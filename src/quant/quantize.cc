#include "quant/quantize.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace socflow {
namespace quant {

int
quantMax(int bits)
{
    SOCFLOW_ASSERT(bits >= 2 && bits <= 30, "unsupported bit width");
    return (1 << (bits - 1)) - 1;
}

float
computeScale(const float *x, std::size_t n, int bits)
{
    float mx = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        mx = std::max(mx, std::abs(x[i]));
    if (mx == 0.0f)
        return 0.0f;
    return mx / static_cast<float>(quantMax(bits));
}

void
quantize(const float *x, std::size_t n, float scale,
         const QuantConfig &cfg, Rng *rng, std::int32_t *q)
{
    const int qmax = quantMax(cfg.bits);
    if (scale == 0.0f) {
        std::fill(q, q + n, 0);
        return;
    }
    const float inv = 1.0f / scale;
    for (std::size_t i = 0; i < n; ++i) {
        const float v = x[i] * inv;
        float r;
        if (cfg.stochasticRounding && rng) {
            const float fl = std::floor(v);
            const float frac = v - fl;
            r = fl + (rng->uniform() < frac ? 1.0f : 0.0f);
        } else {
            r = std::nearbyint(v);
        }
        r = std::clamp(r, static_cast<float>(-qmax),
                       static_cast<float>(qmax));
        q[i] = static_cast<std::int32_t>(r);
    }
}

void
dequantize(const std::int32_t *q, std::size_t n, float scale, float *x)
{
    for (std::size_t i = 0; i < n; ++i)
        x[i] = static_cast<float>(q[i]) * scale;
}

void
fakeQuantize(Tensor &x, const QuantConfig &cfg, Rng *rng)
{
    const std::size_t n = x.numel();
    if (n == 0)
        return;
    const float scale = computeScale(x.data(), n, cfg.bits);
    if (scale == 0.0f)
        return;
    std::vector<std::int32_t> q(n);
    quantize(x.data(), n, scale, cfg, rng, q.data());
    dequantize(q.data(), n, scale, x.data());
}

void
int8Gemm(const std::int32_t *a, const std::int32_t *b, std::int32_t *c,
         std::size_t m, std::size_t n, std::size_t k)
{
    std::fill(c, c + m * n, 0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
            const std::int32_t av = a[i * k + p];
            if (av == 0)
                continue;
            const std::int32_t *brow = b + p * n;
            std::int32_t *crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

Tensor
quantizedGemmReference(const Tensor &a, const Tensor &b,
                       const QuantConfig &cfg)
{
    SOCFLOW_ASSERT(a.rank() == 2 && b.rank() == 2 &&
                       a.dim(1) == b.dim(0),
                   "quantizedGemmReference shape mismatch");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    const float sa = computeScale(a.data(), a.numel(), cfg.bits);
    const float sb = computeScale(b.data(), b.numel(), cfg.bits);

    QuantConfig deterministic = cfg;
    deterministic.stochasticRounding = false;
    std::vector<std::int32_t> qa(a.numel()), qb(b.numel()),
        qc(m * n);
    quantize(a.data(), a.numel(), sa, deterministic, nullptr, qa.data());
    quantize(b.data(), b.numel(), sb, deterministic, nullptr, qb.data());
    int8Gemm(qa.data(), qb.data(), qc.data(), m, n, k);

    Tensor out({m, n});
    const float scale = sa * sb;
    for (std::size_t i = 0; i < m * n; ++i)
        out[i] = static_cast<float>(qc[i]) * scale;
    return out;
}

} // namespace quant
} // namespace socflow
