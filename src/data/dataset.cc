#include "data/dataset.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace socflow {
namespace data {

Dataset::Dataset(std::string name, Tensor images, std::vector<int> labels,
                 std::size_t classes)
    : name_(std::move(name)), images_(std::move(images)),
      labels_(std::move(labels)), classes_(classes)
{
    SOCFLOW_ASSERT(images_.rank() == 4, "dataset images must be NCHW");
    SOCFLOW_ASSERT(images_.dim(0) == labels_.size(),
                   "image/label count mismatch");
    for (int y : labels_) {
        SOCFLOW_ASSERT(y >= 0 && static_cast<std::size_t>(y) < classes_,
                       "label out of range");
    }
}

std::size_t
Dataset::sampleNumel() const
{
    return images_.dim(1) * images_.dim(2) * images_.dim(3);
}

std::pair<Tensor, std::vector<int>>
Dataset::batch(const std::vector<std::size_t> &indices) const
{
    const std::size_t per = sampleNumel();
    Tensor x({indices.size(), images_.dim(1), images_.dim(2),
              images_.dim(3)});
    std::vector<int> y(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const std::size_t s = indices[i];
        SOCFLOW_ASSERT(s < size(), "batch index out of range");
        std::copy(images_.data() + s * per,
                  images_.data() + (s + 1) * per, x.data() + i * per);
        y[i] = labels_[s];
    }
    return {std::move(x), std::move(y)};
}

std::pair<Tensor, std::vector<int>>
Dataset::all() const
{
    std::vector<std::size_t> idx(size());
    std::iota(idx.begin(), idx.end(), 0);
    return batch(idx);
}

std::vector<std::vector<std::size_t>>
shardIid(std::size_t n, std::size_t shards, Rng &rng)
{
    SOCFLOW_ASSERT(shards > 0, "need at least one shard");
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    std::vector<std::vector<std::size_t>> out(shards);
    for (std::size_t i = 0; i < n; ++i)
        out[i % shards].push_back(order[i]);
    return out;
}

std::vector<std::vector<std::size_t>>
shardByLabelSkew(const std::vector<int> &labels, std::size_t shards,
                 double skew, std::size_t classes, Rng &rng)
{
    SOCFLOW_ASSERT(shards > 0, "need at least one shard");
    SOCFLOW_ASSERT(skew >= 0.0 && skew <= 1.0, "skew must be in [0,1]");

    // Bucket indices by label, shuffled within each bucket.
    std::vector<std::vector<std::size_t>> byLabel(classes);
    for (std::size_t i = 0; i < labels.size(); ++i)
        byLabel[static_cast<std::size_t>(labels[i])].push_back(i);
    for (auto &bucket : byLabel)
        rng.shuffle(bucket);

    std::vector<std::vector<std::size_t>> out(shards);
    std::vector<std::size_t> leftovers;

    // Each shard first claims `skew` of its quota from its dominant
    // class; the remainder is filled IID from the leftovers.
    const std::size_t quota = labels.size() / shards;
    const std::size_t dominant =
        static_cast<std::size_t>(skew * static_cast<double>(quota));
    for (std::size_t s = 0; s < shards; ++s) {
        auto &bucket = byLabel[s % classes];
        const std::size_t take = std::min(dominant, bucket.size());
        out[s].insert(out[s].end(), bucket.end() - take, bucket.end());
        bucket.resize(bucket.size() - take);
    }
    for (auto &bucket : byLabel)
        leftovers.insert(leftovers.end(), bucket.begin(), bucket.end());
    rng.shuffle(leftovers);
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < leftovers.size(); ++i, ++cursor)
        out[cursor % shards].push_back(leftovers[i]);
    return out;
}

BatchIterator::BatchIterator(std::size_t n, std::size_t batch_size,
                             Rng rng_in)
    : batchSize(batch_size), order(n), rng(rng_in)
{
    SOCFLOW_ASSERT(batch_size > 0, "batch size must be positive");
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
}

std::vector<std::size_t>
BatchIterator::next()
{
    SOCFLOW_ASSERT(!epochDone(), "epoch exhausted; call reset()");
    const std::size_t end = std::min(order.size(), cursor + batchSize);
    std::vector<std::size_t> batch(order.begin() + cursor,
                                   order.begin() + end);
    cursor = end;
    return batch;
}

void
BatchIterator::reset()
{
    cursor = 0;
    rng.shuffle(order);
}

std::size_t
BatchIterator::batchesPerEpoch() const
{
    return (order.size() + batchSize - 1) / batchSize;
}

} // namespace data
} // namespace socflow
