/**
 * @file
 * Procedural class-conditional image synthesis.
 *
 * The paper trains on CIFAR-10, EMNIST, Fashion-MNIST, CelebA and
 * CINIC-10, none of which ships with this reproduction. Each is
 * replaced by a synthetic analog: smooth per-class prototype fields
 * plus class-specific variation modes, pixel noise, and optional
 * random shifts. Difficulty (noise level, prototype blending toward a
 * common mean) is tuned per analog so relative task hardness matches
 * the paper's ordering (CelebA easy ... CIFAR/CINIC hard), which is
 * what the accuracy-sensitive experiments depend on.
 */

#ifndef SOCFLOW_DATA_SYNTHETIC_HH
#define SOCFLOW_DATA_SYNTHETIC_HH

#include <string>

#include "data/dataset.hh"

namespace socflow {
namespace data {

/** Parameters of one synthetic dataset family. */
struct SyntheticParams {
    std::string name = "synthetic";
    std::size_t classes = 10;
    std::size_t channels = 3;
    std::size_t height = 12;
    std::size_t width = 12;
    std::size_t trainSamples = 1536;
    std::size_t testSamples = 512;
    /** Per-pixel Gaussian noise stddev (difficulty knob #1). */
    double noise = 0.4;
    /** Blend of each prototype toward the global mean, [0,1)
     *  (difficulty knob #2: closer prototypes = harder). */
    double protoBlend = 0.0;
    /** Strength of class-specific within-class variation modes. */
    double withinVar = 0.35;
    /** Max random circular shift in pixels (0 disables). */
    std::size_t maxShift = 1;
    /** Number of Gaussian bumps forming each prototype. */
    std::size_t bumps = 6;
    /** Real-dataset size this analog stands in for (0 = none). */
    double paperTrainSamples = 0.0;
    std::uint64_t seed = 1234;
};

/** Generate a train/test bundle from explicit parameters. */
DataBundle makeSynthetic(const SyntheticParams &params);

/**
 * Registry of the paper's dataset analogs:
 *   "emnist", "fmnist", "cifar10", "celeba", "cinic10".
 * Unknown names are a user error.
 */
DataBundle makeDatasetByName(const std::string &name,
                             std::uint64_t seed = 1234);

/** Parameters behind makeDatasetByName, exposed for tests. */
SyntheticParams registryParams(const std::string &name,
                               std::uint64_t seed = 1234);

} // namespace data
} // namespace socflow

#endif // SOCFLOW_DATA_SYNTHETIC_HH
