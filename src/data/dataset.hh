/**
 * @file
 * In-memory labeled image datasets and batching helpers.
 */

#ifndef SOCFLOW_DATA_DATASET_HH
#define SOCFLOW_DATA_DATASET_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "nn/zoo.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace socflow {
namespace data {

using tensor::Tensor;

/**
 * A labeled dataset held fully in memory: images [N, C, H, W] plus
 * integer labels.
 */
class Dataset
{
  public:
    Dataset() = default;
    Dataset(std::string name, Tensor images, std::vector<int> labels,
            std::size_t classes);

    const std::string &name() const { return name_; }
    std::size_t size() const { return labels_.size(); }
    std::size_t classes() const { return classes_; }
    const Tensor &images() const { return images_; }
    const std::vector<int> &labels() const { return labels_; }

    /** Gather a batch by sample indices. */
    std::pair<Tensor, std::vector<int>> batch(
        const std::vector<std::size_t> &indices) const;

    /** Gather the whole dataset as one batch (for evaluation). */
    std::pair<Tensor, std::vector<int>> all() const;

    /** Per-sample element count (C*H*W). */
    std::size_t sampleNumel() const;

  private:
    std::string name_;
    Tensor images_;
    std::vector<int> labels_;
    std::size_t classes_ = 0;
};

/** A train/test pair plus the input geometry for model builders. */
struct DataBundle {
    Dataset train;
    Dataset test;
    nn::NetSpec spec;
    /**
     * Size of the real dataset this synthetic bundle stands in for
     * (e.g. 50000 for CIFAR-10). Trainers replicate per-step timing
     * and energy by paperTrainSamples / train.size() so simulated
     * epochs cost what a paper-scale epoch would; 0 disables.
     */
    double paperTrainSamples = 0.0;

    /** Timing replication factor (1 when no paper-scale is set). */
    double
    timeScale() const
    {
        if (paperTrainSamples <= 0.0 || train.size() == 0)
            return 1.0;
        return paperTrainSamples / static_cast<double>(train.size());
    }
};

/**
 * Split sample indices into IID shards of near-equal size after a
 * global shuffle.
 */
std::vector<std::vector<std::size_t>> shardIid(std::size_t n,
                                               std::size_t shards,
                                               Rng &rng);

/**
 * Split with label skew: a `skew` fraction of each shard comes from
 * one dominant class (round-robin over classes); the rest is IID.
 * skew = 0 reduces to shardIid. Used for the non-IID federated
 * comparison.
 */
std::vector<std::vector<std::size_t>> shardByLabelSkew(
    const std::vector<int> &labels, std::size_t shards, double skew,
    std::size_t classes, Rng &rng);

/**
 * Reshuffling minibatch index stream over [0, n).
 */
class BatchIterator
{
  public:
    BatchIterator(std::size_t n, std::size_t batch_size, Rng rng);

    /** Indices of the next minibatch (last batch may be short). */
    std::vector<std::size_t> next();

    /** True when the current epoch is exhausted. */
    bool epochDone() const { return cursor >= order.size(); }

    /** Start a new epoch (reshuffles). */
    void reset();

    /** Batches per epoch. */
    std::size_t batchesPerEpoch() const;

  private:
    std::size_t batchSize;
    std::vector<std::size_t> order;
    std::size_t cursor = 0;
    Rng rng;
};

} // namespace data
} // namespace socflow

#endif // SOCFLOW_DATA_DATASET_HH
