#include "data/synthetic.hh"

#include <cmath>

#include "util/logging.hh"

namespace socflow {
namespace data {

namespace {

/** A smooth random field: sum of Gaussian bumps per channel. */
std::vector<float>
randomField(const SyntheticParams &p, Rng &rng)
{
    const std::size_t per = p.height * p.width;
    std::vector<float> field(p.channels * per, 0.0f);
    for (std::size_t c = 0; c < p.channels; ++c) {
        for (std::size_t b = 0; b < p.bumps; ++b) {
            const double cy = rng.uniform(0.0, p.height);
            const double cx = rng.uniform(0.0, p.width);
            const double sigma =
                rng.uniform(0.12, 0.35) * static_cast<double>(p.height);
            const double amp = rng.gaussian(0.0, 1.0);
            const double inv2s2 = 1.0 / (2.0 * sigma * sigma);
            for (std::size_t y = 0; y < p.height; ++y) {
                for (std::size_t x = 0; x < p.width; ++x) {
                    const double dy = static_cast<double>(y) - cy;
                    const double dx = static_cast<double>(x) - cx;
                    field[c * per + y * p.width + x] +=
                        static_cast<float>(
                            amp * std::exp(-(dy * dy + dx * dx) *
                                           inv2s2));
                }
            }
        }
    }
    return field;
}

/** Circularly shift a sample by (dy, dx), per channel. */
std::vector<float>
shiftSample(const std::vector<float> &src, const SyntheticParams &p,
            int dy, int dx)
{
    const std::size_t per = p.height * p.width;
    std::vector<float> out(src.size());
    for (std::size_t c = 0; c < p.channels; ++c) {
        for (std::size_t y = 0; y < p.height; ++y) {
            const std::size_t sy =
                (y + p.height - static_cast<std::size_t>(
                                    (dy % static_cast<int>(p.height) +
                                     static_cast<int>(p.height)) %
                                    static_cast<int>(p.height))) %
                p.height;
            for (std::size_t x = 0; x < p.width; ++x) {
                const std::size_t sx =
                    (x + p.width -
                     static_cast<std::size_t>(
                         (dx % static_cast<int>(p.width) +
                          static_cast<int>(p.width)) %
                         static_cast<int>(p.width))) %
                    p.width;
                out[c * per + y * p.width + x] =
                    src[c * per + sy * p.width + sx];
            }
        }
    }
    return out;
}

Dataset
generateSplit(const std::string &name, const SyntheticParams &p,
              std::size_t samples,
              const std::vector<std::vector<float>> &protos,
              const std::vector<std::vector<std::vector<float>>> &modes,
              Rng &rng)
{
    const std::size_t per = p.channels * p.height * p.width;
    Tensor images({samples, p.channels, p.height, p.width});
    std::vector<int> labels(samples);

    for (std::size_t i = 0; i < samples; ++i) {
        const std::size_t k = rng.uniformInt(p.classes);
        labels[i] = static_cast<int>(k);
        std::vector<float> sample = protos[k];
        for (const auto &mode : modes[k]) {
            const float a =
                static_cast<float>(rng.gaussian(0.0, p.withinVar));
            for (std::size_t j = 0; j < per; ++j)
                sample[j] += a * mode[j];
        }
        if (p.maxShift > 0) {
            const int range = 2 * static_cast<int>(p.maxShift) + 1;
            const int dy = static_cast<int>(rng.uniformInt(range)) -
                           static_cast<int>(p.maxShift);
            const int dx = static_cast<int>(rng.uniformInt(range)) -
                           static_cast<int>(p.maxShift);
            if (dy != 0 || dx != 0)
                sample = shiftSample(sample, p, dy, dx);
        }
        float *dst = images.data() + i * per;
        for (std::size_t j = 0; j < per; ++j) {
            dst[j] = sample[j] +
                     static_cast<float>(rng.gaussian(0.0, p.noise));
        }
    }
    return Dataset(name, std::move(images), std::move(labels),
                   p.classes);
}

} // namespace

DataBundle
makeSynthetic(const SyntheticParams &p)
{
    SOCFLOW_ASSERT(p.classes >= 2, "need at least two classes");
    Rng rng(p.seed);

    // Class prototypes and variation modes.
    std::vector<std::vector<float>> protos;
    std::vector<std::vector<std::vector<float>>> modes;
    protos.reserve(p.classes);
    for (std::size_t k = 0; k < p.classes; ++k) {
        protos.push_back(randomField(p, rng));
        modes.push_back({randomField(p, rng), randomField(p, rng)});
    }

    // Blend prototypes toward the global mean (difficulty knob).
    if (p.protoBlend > 0.0) {
        const std::size_t per = protos[0].size();
        std::vector<float> mean(per, 0.0f);
        for (const auto &proto : protos)
            for (std::size_t j = 0; j < per; ++j)
                mean[j] += proto[j] / static_cast<float>(p.classes);
        for (auto &proto : protos) {
            for (std::size_t j = 0; j < per; ++j) {
                proto[j] = static_cast<float>(
                    (1.0 - p.protoBlend) * proto[j] +
                    p.protoBlend * mean[j]);
            }
        }
    }

    DataBundle bundle;
    bundle.spec = nn::NetSpec{p.channels, p.height, p.width, p.classes};
    bundle.paperTrainSamples = p.paperTrainSamples;
    Rng trainRng = rng.split();
    Rng testRng = rng.split();
    bundle.train = generateSplit(p.name + ".train", p, p.trainSamples,
                                 protos, modes, trainRng);
    bundle.test = generateSplit(p.name + ".test", p, p.testSamples,
                                protos, modes, testRng);
    return bundle;
}

SyntheticParams
registryParams(const std::string &name, std::uint64_t seed)
{
    SyntheticParams p;
    p.name = name;
    p.seed = seed;
    if (name == "emnist") {
        // Handwritten-character analog: 1 channel, moderate noise.
        p.channels = 1;
        p.classes = 10;
        p.noise = 0.55;
        p.protoBlend = 0.25;
        p.maxShift = 1;
        p.paperTrainSamples = 60000.0;  // EMNIST digits
    } else if (name == "fmnist") {
        // Fashion-MNIST analog: 1 channel, slightly easier.
        p.channels = 1;
        p.classes = 10;
        p.noise = 0.45;
        p.protoBlend = 0.15;
        p.maxShift = 1;
        p.paperTrainSamples = 60000.0;  // Fashion-MNIST
    } else if (name == "cifar10") {
        // Natural-image analog: 3 channels, hard.
        p.channels = 3;
        p.classes = 10;
        p.noise = 0.85;
        p.protoBlend = 0.35;
        p.withinVar = 0.45;
        p.maxShift = 2;
        // Large enough that 8 groups x batch 32 still take a useful
        // number of steps between delayed aggregations.
        p.trainSamples = 3072;
        p.paperTrainSamples = 50000.0;  // CIFAR-10
    } else if (name == "celeba") {
        // Binary attribute classification: easy, near-saturating
        // (the paper reports ~97%).
        p.channels = 3;
        p.classes = 2;
        p.noise = 2.1;
        p.protoBlend = 0.78;
        p.withinVar = 0.60;
        p.maxShift = 1;
        p.trainSamples = 2560;
        p.paperTrainSamples = 30000.0;  // CelebA attribute subset
    } else if (name == "cinic10") {
        // CIFAR-compatible distribution with more data (used to
        // pre-train the ResNet-50 transfer-learning experiment).
        // Shares the CIFAR seed so classes align for transfer.
        p.channels = 3;
        p.classes = 10;
        p.noise = 0.95;
        p.protoBlend = 0.35;
        p.withinVar = 0.50;
        p.maxShift = 2;
        p.trainSamples = 4096;
        p.paperTrainSamples = 90000.0;  // CINIC-10 train split
        p.seed = seed;  // caller should pass the cifar10 seed
    } else {
        fatal("unknown dataset analog: ", name);
    }
    return p;
}

DataBundle
makeDatasetByName(const std::string &name, std::uint64_t seed)
{
    return makeSynthetic(registryParams(name, seed));
}

} // namespace data
} // namespace socflow
