#include "ckpt/replicated_store.hh"

#include <algorithm>
#include <cstring>
#include <map>

#include "core/checkpoint.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace socflow {
namespace ckpt {

namespace {

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t
getU64(const std::vector<std::uint8_t> &in, std::size_t off)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{in[off + i]} << (8 * i);
    return v;
}

/** Manifest payload: [generation][epoch][blob checksum][k][k × soc]. */
std::vector<std::uint8_t>
buildManifest(std::uint64_t generation, std::uint64_t epoch,
              std::uint64_t blobChecksum,
              const std::vector<ReplicaSite> &sites)
{
    std::vector<std::uint8_t> p;
    p.reserve(8 * (4 + sites.size()));
    putU64(p, generation);
    putU64(p, epoch);
    putU64(p, blobChecksum);
    putU64(p, sites.size());
    for (const auto &s : sites)
        putU64(p, s.soc);
    return p;
}

/** Decoded manifest payload. */
struct Manifest {
    std::uint64_t generation = 0;
    std::uint64_t epoch = 0;
    std::uint64_t blobChecksum = 0;
    std::vector<sim::SocId> socs;
};

Manifest
parseManifest(const std::vector<std::uint8_t> &payload)
{
    if (payload.size() < 32)
        throw core::CheckpointError("manifest payload truncated");
    Manifest m;
    m.generation = getU64(payload, 0);
    m.epoch = getU64(payload, 8);
    m.blobChecksum = getU64(payload, 16);
    const std::uint64_t k = getU64(payload, 24);
    if (payload.size() != 32 + 8 * k)
        throw core::CheckpointError("manifest replica list malformed");
    for (std::uint64_t i = 0; i < k; ++i)
        m.socs.push_back(
            static_cast<sim::SocId>(getU64(payload, 32 + 8 * i)));
    return m;
}

} // namespace

std::vector<std::uint8_t>
sealEnvelope(std::uint64_t magic, const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(payload.size() + 24);
    putU64(out, magic);
    putU64(out, payload.size());
    out.insert(out.end(), payload.begin(), payload.end());
    putU64(out, core::checkpointChecksum(out));
    return out;
}

std::vector<std::uint8_t>
openEnvelope(std::uint64_t magic, const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < 24)
        throw core::CheckpointError("envelope truncated before header");
    if (getU64(bytes, 0) != magic)
        throw core::CheckpointError("envelope magic mismatch");
    const std::uint64_t len = getU64(bytes, 8);
    if (bytes.size() != len + 24)
        throw core::CheckpointError("envelope length mismatch");
    std::vector<std::uint8_t> body(bytes.begin(), bytes.end() - 8);
    if (core::checkpointChecksum(body) != getU64(bytes, bytes.size() - 8))
        throw core::CheckpointError("envelope checksum mismatch");
    return std::vector<std::uint8_t>(bytes.begin() + 16,
                                     bytes.end() - 8);
}

ReplicatedCkptStore::ReplicatedCkptStore(const sim::Cluster &cluster_,
                                         CkptStoreConfig config)
    : cluster(cluster_), cfg(config)
{
    if (cfg.replicas == 0)
        fatal("checkpoint replication factor must be >= 1");
    sites = planPlacement(cluster, cfg.source, cfg.replicas);
    cells.reserve(sites.size());
    for (const auto &s : sites)
        cells.push_back(Cell{s, {}, {}});
    if (sites.size() < cfg.replicas)
        warn("checkpoint store: fleet yields only ", sites.size(),
             " distinct replica sites of ", cfg.replicas, " requested");
}

void
ReplicatedCkptStore::drainFaultBudget()
{
    if (cfg.faults == nullptr)
        return;
    const std::size_t pending = cfg.faults->drainReplicaLosses();
    if (pending > 0)
        loseReplicas(pending);
}

WriteReceipt
ReplicatedCkptStore::write(std::uint64_t epoch,
                           const std::vector<std::uint8_t> &blob)
{
    drainFaultBudget();

    WriteReceipt receipt;
    receipt.generation = gate.bump();
    receipt.epoch = epoch;

    const std::uint64_t blobSum = core::checkpointChecksum(blob);
    const std::vector<std::uint8_t> sealed =
        sealEnvelope(kReplicaMagic, blob);
    const std::vector<std::uint8_t> manifest = sealEnvelope(
        kManifestMagic,
        buildManifest(receipt.generation, epoch, blobSum, sites));

    static obs::Counter &written =
        obs::metrics().counter("ckpt_replica_writes_total");
    static obs::Counter &torn = obs::metrics().counter(
        "ckpt_replica_writes_total", {{"outcome", "torn"}});

    std::vector<sim::FlowSpec> flows;
    for (auto &cell : cells) {
        // An injected write failure at this site. Copies land
        // write-to-temp + atomic-rename style, so the failure leaves
        // the site's PREVIOUS generation intact -- the torn temp copy
        // never becomes visible. This is what lets a minority of
        // failed writes roll back to the last acked generation
        // instead of destroying it; at-rest corruption (bit rot,
        // replica loss) is what the envelope checksums catch.
        if (cfg.faults != nullptr && cfg.faults->checkpointWriteFails()) {
            torn.add();
            continue;
        }
        cell.data = sealed;
        cell.manifest = manifest;
        ++receipt.replicasWritten;
        written.add();
        if (cell.site.soc != cfg.source)
            flows.push_back(cluster.transfer(
                cfg.source, cell.site.soc,
                static_cast<double>(sealed.size())));
    }
    // The local copy costs one message latency (storage commit); the
    // remote fan-out is priced on the shared network like any other
    // traffic, so checkpointing contends with training for uplinks.
    receipt.writeSeconds = cluster.config().messageLatencyS +
                           cluster.network().makespan(flows);
    receipt.acked = receipt.replicasWritten >= sites.size() / 2 + 1;

    obs::tracer().recordInstant(
        receipt.acked ? "checkpoint replicated (acked)"
                      : "checkpoint replication below quorum",
        "ckpt", obs::kTrackControl, 0.0);
    return receipt;
}

RestoreResult
ReplicatedCkptStore::restore(sim::SocId reader)
{
    drainFaultBudget();

    RestoreResult result;
    std::vector<sim::FlowSpec> manifestFlows;

    // 1. Quorum read: validate every surviving manifest copy. Torn
    //    and bit-flipped copies fail the envelope checksum and are
    //    discarded -- they never vote.
    struct Candidate {
        Manifest manifest;
        std::size_t votes = 0;
    };
    std::map<std::uint64_t, Candidate> byGen;
    for (const auto &cell : cells) {
        if (cell.manifest.empty())
            continue;
        if (cell.site.soc != reader)
            manifestFlows.push_back(cluster.transfer(
                cell.site.soc, reader,
                static_cast<double>(cell.manifest.size())));
        try {
            Manifest m = parseManifest(
                openEnvelope(kManifestMagic, cell.manifest));
            auto [it, fresh] = byGen.try_emplace(m.generation);
            if (fresh)
                it->second.manifest = m;
            ++it->second.votes;
        } catch (const core::CheckpointError &) {
            ++result.tornCopies;
        }
    }
    if (byGen.empty())
        throw core::CheckpointError(
            "checkpoint restore: no readable manifest survives");

    // 2. Vote: most manifest copies wins; ties go to the newer
    //    generation. A torn newest write (minority of copies) loses
    //    to the last acked generation, which is the roll-back the
    //    ack contract promises.
    std::vector<const Candidate *> order;
    for (const auto &kv : byGen)
        order.push_back(&kv.second);
    std::sort(order.begin(), order.end(),
              [](const Candidate *a, const Candidate *b) {
                  if (a->votes != b->votes)
                      return a->votes > b->votes;
                  return a->manifest.generation > b->manifest.generation;
              });

    // 3. Fetch the blob from the nearest intact replica of the best
    //    restorable generation: same board beats same rack beats
    //    cross-rack, lowest SoC id breaks ties (determinism).
    for (const Candidate *cand : order) {
        const Manifest &m = cand->manifest;
        const Cell *best = nullptr;
        int bestClass = 3;
        std::vector<std::uint8_t> bestBlob;
        for (const auto &cell : cells) {
            if (cell.data.empty())
                continue;
            std::vector<std::uint8_t> blob;
            try {
                blob = openEnvelope(kReplicaMagic, cell.data);
            } catch (const core::CheckpointError &) {
                continue; // torn data copy; counted once below
            }
            if (core::checkpointChecksum(blob) != m.blobChecksum)
                continue; // intact copy of a *different* generation
            int cls = 2;
            if (cluster.sameBoard(cell.site.soc, reader))
                cls = 0;
            else if (cluster.sameRack(cell.site.soc, reader))
                cls = 1;
            if (cls < bestClass ||
                (best != nullptr && cls == bestClass &&
                 cell.site.soc < best->site.soc)) {
                bestClass = cls;
                best = &cell;
                bestBlob = std::move(blob);
            }
        }
        if (best == nullptr)
            continue; // manifest survives but no intact data copy
        result.bytes = std::move(bestBlob);
        result.generation = m.generation;
        result.epoch = m.epoch;
        result.replicaSoc = best->site.soc;
        std::vector<sim::FlowSpec> flows = manifestFlows;
        if (best->site.soc != reader)
            flows.push_back(cluster.transfer(
                best->site.soc, reader,
                static_cast<double>(best->data.size())));
        result.restoreSeconds = cluster.config().messageLatencyS +
                                cluster.network().makespan(flows);
        obs::metrics()
            .tdigest("ckpt_restore_seconds_digest")
            .observe(result.restoreSeconds);
        obs::tracer().recordInstant("checkpoint restored from replica",
                                    "ckpt", obs::kTrackControl, 0.0);
        return result;
    }
    throw core::CheckpointError(
        "checkpoint restore: no generation has an intact data replica");
}

void
ReplicatedCkptStore::loseRack(sim::RackId rack)
{
    std::size_t destroyed = 0;
    for (auto &cell : cells) {
        if (cell.site.rack != rack)
            continue;
        if (!cell.data.empty() || !cell.manifest.empty())
            ++destroyed;
        cell.data.clear();
        cell.manifest.clear();
    }
    if (destroyed > 0)
        warn("checkpoint store: rack ", rack, " loss destroyed ",
             destroyed, " replica site(s)");
}

std::size_t
ReplicatedCkptStore::loseReplicas(std::size_t n)
{
    std::size_t destroyed = 0;
    for (auto it = cells.rbegin(); it != cells.rend() && destroyed < n;
         ++it) {
        if (it->data.empty() && it->manifest.empty())
            continue;
        it->data.clear();
        it->manifest.clear();
        ++destroyed;
    }
    if (destroyed > 0)
        warn("checkpoint store: fault destroyed ", destroyed,
             " replica copy(ies)");
    return destroyed;
}

std::size_t
ReplicatedCkptStore::survivingCopies() const
{
    std::size_t n = 0;
    for (const auto &cell : cells) {
        try {
            (void)openEnvelope(kReplicaMagic, cell.data);
            ++n;
        } catch (const core::CheckpointError &) {
        }
    }
    return n;
}

std::vector<std::uint8_t> &
ReplicatedCkptStore::replicaData(std::size_t i)
{
    if (i >= cells.size())
        fatal("replica index ", i, " out of range");
    return cells[i].data;
}

std::vector<std::uint8_t> &
ReplicatedCkptStore::manifestData(std::size_t i)
{
    if (i >= cells.size())
        fatal("manifest index ", i, " out of range");
    return cells[i].manifest;
}

} // namespace ckpt
} // namespace socflow
