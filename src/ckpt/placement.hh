/**
 * @file
 * Failure-domain-aware checkpoint replica placement.
 *
 * A checkpoint that lives on one board dies with that board's rack.
 * The planner spreads k replicas of a blob across distinct failure
 * domains of the live fleet -- a fresh rack first, then a fresh
 * board, then any live SoC -- so the configured replication factor
 * buys real independence: with k = 2 on a multi-rack fleet the two
 * copies always land in two different racks, and the loss of any
 * single rack leaves an intact copy (tests/test_ckpt.cc proves this
 * for every rack). Placement is fully deterministic (lowest-id
 * candidate within the preferred domain class), so seeded runs
 * replay bit-exactly.
 */

#ifndef SOCFLOW_CKPT_PLACEMENT_HH
#define SOCFLOW_CKPT_PLACEMENT_HH

#include <cstddef>
#include <vector>

#include "fault/fault.hh"
#include "sim/cluster.hh"

namespace socflow {
namespace ckpt {

/** One chosen replica location. */
struct ReplicaSite {
    sim::SocId soc = 0;
    sim::BoardId board = 0;
    sim::RackId rack = 0;
};

/**
 * Plan `replicas` sites for a checkpoint written by `source`.
 *
 * Site 0 is always the source itself (the local durable copy every
 * write starts from). Each further site prefers, in order: a SoC in
 * a rack no earlier site uses, then a SoC on a board no earlier site
 * uses, then any unused live SoC -- lowest SoC id within the class,
 * for determinism. SoCs reported dead by `live` (when given) are
 * skipped. Returns fewer than `replicas` sites when the live fleet
 * has fewer distinct SoCs.
 */
std::vector<ReplicaSite> planPlacement(
    const sim::Cluster &cluster, sim::SocId source,
    std::size_t replicas, const fault::FaultModel *live = nullptr);

} // namespace ckpt
} // namespace socflow

#endif // SOCFLOW_CKPT_PLACEMENT_HH
