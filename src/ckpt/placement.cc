#include "ckpt/placement.hh"

#include <set>

#include "util/logging.hh"

namespace socflow {
namespace ckpt {

std::vector<ReplicaSite>
planPlacement(const sim::Cluster &cluster, sim::SocId source,
              std::size_t replicas, const fault::FaultModel *live)
{
    const std::size_t numSocs = cluster.config().numSocs;
    if (source >= numSocs)
        fatal("replica source SoC ", source, " outside the cluster");
    if (replicas == 0)
        fatal("checkpoint replication factor must be >= 1");

    const auto site = [&cluster](sim::SocId s) {
        return ReplicaSite{s, cluster.board(s), cluster.rack(s)};
    };
    const auto alive = [live](sim::SocId s) {
        return !live || live->socAlive(s);
    };

    std::vector<ReplicaSite> plan;
    plan.push_back(site(source));
    std::set<sim::SocId> usedSocs = {source};
    std::set<sim::BoardId> usedBoards = {plan[0].board};
    std::set<sim::RackId> usedRacks = {plan[0].rack};

    while (plan.size() < replicas) {
        // Preference classes, best first: fresh rack beats fresh
        // board beats merely-fresh SoC. Lowest id inside the class.
        sim::SocId best = numSocs;
        int bestClass = 3;
        for (sim::SocId s = 0; s < numSocs; ++s) {
            if (usedSocs.count(s) || !alive(s))
                continue;
            int cls;
            if (!usedRacks.count(cluster.rack(s)))
                cls = 0;
            else if (!usedBoards.count(cluster.board(s)))
                cls = 1;
            else
                cls = 2;
            if (cls < bestClass) {
                bestClass = cls;
                best = s;
            }
        }
        if (best == numSocs)
            break; // live fleet exhausted: fewer sites than asked
        plan.push_back(site(best));
        usedSocs.insert(best);
        usedBoards.insert(plan.back().board);
        usedRacks.insert(plan.back().rack);
    }
    return plan;
}

} // namespace ckpt
} // namespace socflow
