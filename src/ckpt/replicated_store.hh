/**
 * @file
 * Replicated checkpoint store with quorum-read manifests.
 *
 * The durable half of whole-fleet crash-restart recovery (DESIGN.md
 * ch. 13). Each write seals the trainer's checkpoint blob into a
 * magic+checksum envelope and copies it to k failure-domain-spread
 * sites (ckpt/placement.hh), then publishes a generation-stamped
 * manifest next to every copy. Replica-write traffic is priced
 * through the cluster's FlowNetwork, so checkpointing contends
 * honestly with gradient sync for the same NICs and uplinks.
 *
 * The restore path is a quorum read: every surviving manifest is
 * validated (magic + FNV-1a checksum -- a torn or bit-flipped copy
 * is detected, counted, and discarded, never trusted), survivors
 * vote by generation (majority wins, ties to the newer generation,
 * so a torn newest write rolls back to the last acked one), and the
 * blob is fetched from the *nearest* intact replica of the winning
 * generation (same board beats same rack beats cross-rack). An acked
 * write -- a strict majority of the k sites durably updated -- can
 * therefore survive the destruction of any single rack at k >= 2:
 * placement guarantees the copies span racks, and the vote does not
 * need the dead one.
 *
 * Fault coupling: the injector's CheckpointFail budget fails
 * individual site writes -- copies land write-to-temp +
 * atomic-rename style, so a failed site keeps its previous
 * generation visible and the roll-back-to-last-acked promise holds
 * -- and the CkptReplicaLoss budget destroys durable copies at rest
 * outright. Both are drained at the store's read/write boundaries,
 * deterministically.
 */

#ifndef SOCFLOW_CKPT_REPLICATED_STORE_HH
#define SOCFLOW_CKPT_REPLICATED_STORE_HH

#include <cstdint>
#include <vector>

#include "ckpt/placement.hh"
#include "fault/fault.hh"
#include "membership/membership.hh"
#include "sim/cluster.hh"

namespace socflow {
namespace ckpt {

/** Store knobs. */
struct CkptStoreConfig {
    /** Replicas per checkpoint (k). 2 survives any one rack. */
    std::size_t replicas = 2;
    /** SoC whose checkpoint this store persists (placement anchor). */
    sim::SocId source = 0;
    /** Optional fault source: torn writes + replica destruction. */
    fault::FaultInjector *faults = nullptr;
};

/** Outcome of one replicated write. */
struct WriteReceipt {
    std::uint64_t generation = 0;
    std::uint64_t epoch = 0;
    /** FlowNetwork makespan of the replica fan-out, seconds. */
    double writeSeconds = 0.0;
    /** Sites whose data AND manifest were durably updated. */
    std::size_t replicasWritten = 0;
    /** True when a strict majority of the k sites was updated; only
     *  acked checkpoints are guaranteed restorable after any single
     *  failure domain is lost. */
    bool acked = false;
};

/** Outcome of one quorum-read restore. */
struct RestoreResult {
    std::vector<std::uint8_t> bytes;
    std::uint64_t generation = 0;
    std::uint64_t epoch = 0;
    /** Manifest quorum read + blob fetch makespan, seconds. */
    double restoreSeconds = 0.0;
    /** The replica the blob was fetched from (nearest intact). */
    sim::SocId replicaSoc = 0;
    /** Torn/corrupt manifest or data copies detected and discarded. */
    std::size_t tornCopies = 0;
};

/**
 * Seal `payload` into a durable envelope:
 * [magic u64][len u64][payload][FNV-1a u64 over all prior bytes].
 */
std::vector<std::uint8_t> sealEnvelope(
    std::uint64_t magic, const std::vector<std::uint8_t> &payload);

/**
 * Validate and open an envelope sealed with `magic`. Throws
 * core::CheckpointError on truncation, wrong magic, length mismatch
 * or checksum mismatch -- a torn or bit-flipped copy never opens.
 */
std::vector<std::uint8_t> openEnvelope(
    std::uint64_t magic, const std::vector<std::uint8_t> &bytes);

/** Envelope magic for replica data copies ("SFREPV1\0"). */
constexpr std::uint64_t kReplicaMagic = 0x5346524550563100ULL;
/** Envelope magic for manifest copies ("SFMANI1\0"). */
constexpr std::uint64_t kManifestMagic = 0x53464d414e493100ULL;

/**
 * One trainer's replicated checkpoint store over a simulated fleet.
 */
class ReplicatedCkptStore
{
  public:
    ReplicatedCkptStore(const sim::Cluster &cluster,
                        CkptStoreConfig config);

    /**
     * Replicate `blob` (an opaque trainer checkpoint) for `epoch`.
     * Bumps the store generation, fans the sealed copy out to the
     * planned sites, and publishes the new manifest at each site
     * that took the data. Pending injector faults are drained first.
     */
    WriteReceipt write(std::uint64_t epoch,
                       const std::vector<std::uint8_t> &blob);

    /**
     * Quorum-read restore toward `reader`: validate every surviving
     * manifest, vote by generation, fetch the blob from the nearest
     * intact replica of the winning generation. Throws
     * core::CheckpointError when no generation has both a readable
     * manifest and an intact data copy.
     */
    RestoreResult restore(sim::SocId reader);

    /** Destroy every durable copy hosted by `rack` (storage loss,
     *  not power loss -- powered-off copies come back; these don't). */
    void loseRack(sim::RackId rack);

    /** Destroy `n` replica copies, last placement site first.
     *  Returns how many existing copies were actually destroyed. */
    std::size_t loseReplicas(std::size_t n);

    /** The planned replica sites (placement order). */
    const std::vector<ReplicaSite> &placement() const { return sites; }

    /** Sites currently holding an intact, openable data copy. */
    std::size_t survivingCopies() const;

    /** Store generation of the newest write. */
    std::uint64_t generation() const { return gate.current(); }

    /** Raw stored bytes at site `i` (corruption-injection tests). */
    std::vector<std::uint8_t> &replicaData(std::size_t i);
    std::vector<std::uint8_t> &manifestData(std::size_t i);

  private:
    /** Durable state of one replica site. */
    struct Cell {
        ReplicaSite site;
        std::vector<std::uint8_t> data;     //!< sealed blob copy
        std::vector<std::uint8_t> manifest; //!< sealed manifest copy
    };

    /** Apply pending injector replica destruction. */
    void drainFaultBudget();

    const sim::Cluster &cluster;
    CkptStoreConfig cfg;
    std::vector<ReplicaSite> sites;
    std::vector<Cell> cells;
    membership::GenerationGate gate;
};

} // namespace ckpt
} // namespace socflow

#endif // SOCFLOW_CKPT_REPLICATED_STORE_HH
