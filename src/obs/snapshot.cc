#include "obs/snapshot.hh"

#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace socflow {
namespace obs {

MetricSeriesWriter::MetricSeriesWriter(std::string path)
    : outPath(std::move(path)), out(outPath)
{
}

bool
MetricSeriesWriter::snapshot(double t, const MetricsRegistry &reg)
{
    const auto series = reg.snapshotValues();
    std::string line;
    line.reserve(series.size() * 48 + 64);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "{\"t\":%.6g,", t);
    line += buf;

    std::lock_guard<std::mutex> lock(mu);
    std::snprintf(buf, sizeof(buf), "\"seq\":%zu,\"series\":{", lines);
    line += buf;
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (i)
            line += ',';
        line += '"';
        appendJsonEscaped(line, series[i].first);
        line += "\":";
        if (std::isfinite(series[i].second)) {
            std::snprintf(buf, sizeof(buf), "%.12g", series[i].second);
            line += buf;
        } else {
            line += "null";  // NaN quantiles of empty instruments
        }
    }
    line += "}}\n";
    if (!out)
        return false;
    out << line;
    out.flush();
    if (!out)
        return false;
    ++lines;
    return true;
}

bool
MetricSeriesWriter::snapshot(double t)
{
    return snapshot(t, metrics());
}

std::size_t
MetricSeriesWriter::snapshotsWritten() const
{
    std::lock_guard<std::mutex> lock(mu);
    return lines;
}

} // namespace obs
} // namespace socflow
