#include "obs/flight_recorder.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "util/logging.hh"

namespace socflow {
namespace obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : cap(capacity ? capacity : 1)
{
    ring.resize(cap);  // pre-allocated slots; strings grow in place
}

void
FlightRecorder::arm(std::string path)
{
    std::lock_guard<std::mutex> lock(mu);
    outPath = std::move(path);
    isArmed.store(!outPath.empty(), std::memory_order_relaxed);
}

void
FlightRecorder::disarm()
{
    std::lock_guard<std::mutex> lock(mu);
    isArmed.store(false, std::memory_order_relaxed);
    outPath.clear();
    next = 0;
    held = 0;
}

std::string
FlightRecorder::path() const
{
    std::lock_guard<std::mutex> lock(mu);
    return outPath;
}

void
FlightRecorder::record(const TraceEvent &e)
{
    if (!armed())
        return;
    std::lock_guard<std::mutex> lock(mu);
    ring[next] = e;
    next = (next + 1) % cap;
    if (held < cap)
        ++held;
}

std::vector<TraceEvent>
FlightRecorder::lastSpans() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<TraceEvent> out;
    out.reserve(held);
    const std::size_t oldest = held < cap ? 0 : next;
    for (std::size_t i = 0; i < held; ++i)
        out.push_back(ring[(oldest + i) % cap]);
    return out;
}

std::size_t
FlightRecorder::spanCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return held;
}

std::size_t
FlightRecorder::capacity() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cap;
}

void
FlightRecorder::setCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu);
    cap = capacity ? capacity : 1;
    ring.clear();
    ring.resize(cap);
    next = 0;
    held = 0;
}

bool
FlightRecorder::dumpPostMortem(std::string_view reason,
                               std::uint64_t timeline_hash)
{
    if (!armed())
        return false;
    const std::vector<TraceEvent> spans = lastSpans();
    const std::string dest = path();

    std::string doc;
    doc.reserve(spans.size() * 96 + 512);
    doc += "{\"reason\":\"";
    appendJsonEscaped(doc, reason);
    doc += "\",\"timeline_hash\":\"";
    char hashBuf[24];
    std::snprintf(hashBuf, sizeof(hashBuf), "%016llx",
                  static_cast<unsigned long long>(timeline_hash));
    doc += hashBuf;
    doc += "\",\"spans\":[";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        if (i)
            doc += ',';
        appendTraceEventJson(doc, spans[i]);
    }
    doc += "],\"metrics\":{";
    const auto series = metrics().snapshotValues();
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (i)
            doc += ',';
        doc += '"';
        appendJsonEscaped(doc, series[i].first);
        doc += "\":";
        if (std::isfinite(series[i].second)) {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.12g", series[i].second);
            doc += buf;
        } else {
            doc += "null";
        }
    }
    // Bottleneck attribution at the moment of death: top critical-path
    // resources plus the conservation check, so a post-mortem says not
    // only what happened but where the run's time was going.
    doc += "},\"perf_attribution\":";
    doc += profiler().report().summaryJson();
    doc += '}';

    std::ofstream out(dest);
    if (!out) {
        warn("flight recorder: cannot write post-mortem to ", dest);
        return false;
    }
    out << doc;
    if (!out)
        return false;
    dumps.fetch_add(1, std::memory_order_relaxed);
    warn("flight recorder: post-mortem (", reason, ") written to ",
         dest);
    return true;
}

FlightRecorder &
flightRecorder()
{
    // Leaked on purpose; see obs::metrics(). Arms itself from the
    // environment so chaos harnesses capture post-mortems from any
    // binary without per-binary flag plumbing.
    static FlightRecorder *global = [] {
        auto *r = new FlightRecorder();
        if (const char *spans =
                std::getenv("SOCFLOW_POSTMORTEM_SPANS");
            spans && *spans) {
            const long n = std::strtol(spans, nullptr, 10);
            if (n > 0)
                r->setCapacity(static_cast<std::size_t>(n));
            else
                warn("flight recorder: ignoring invalid "
                     "SOCFLOW_POSTMORTEM_SPANS=", spans);
        }
        if (const char *env = std::getenv("SOCFLOW_POSTMORTEM");
            env && *env) {
            r->arm(env);
            tracer().attachFlightRecorder(r);
        }
        return r;
    }();
    return *global;
}

void
armFlightRecorder(std::string path)
{
    flightRecorder().arm(std::move(path));
    tracer().attachFlightRecorder(&flightRecorder());
}

} // namespace obs
} // namespace socflow
