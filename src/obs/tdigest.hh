/**
 * @file
 * t-digest quantile sketch (Dunning & Ertl, merging variant).
 *
 * A Histogram answers percentile queries by interpolating fixed
 * buckets, which caps tail resolution at the bucket width. The
 * t-digest instead keeps a bounded set of centroids whose maximum
 * weight shrinks toward the distribution's ends (the k1/arcsine
 * scale function k(q) = (delta/2pi) asin(2q-1); a centroid may span
 * one unit of k), so p99/p99.9 of a latency or recovery-time stream
 * stay resolvable from O(compression) memory no matter how many
 * samples arrive.
 *
 * Digests are *mergeable*: per-SoC (or per-group) digests fold into a
 * cluster-level digest the same way group leaders fold weights, and
 * the merged sketch answers quantiles over the union stream within
 * the same error envelope. Observation buffers internally and
 * compresses in amortized O(log n) batches; all operations are
 * thread-safe behind one short-critical-section mutex.
 */

#ifndef SOCFLOW_OBS_TDIGEST_HH
#define SOCFLOW_OBS_TDIGEST_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace socflow {
namespace obs {

/** One weighted centroid of the sketch. */
struct Centroid {
    double mean = 0.0;
    double weight = 0.0;
};

class TDigest
{
  public:
    /**
     * @param compression the delta parameter: larger = more centroids
     *        = finer quantiles. 100 bounds the sketch near ~2*delta
     *        centroids and keeps p99 rank error well under 1%.
     */
    explicit TDigest(double compression = 100.0);

    /** Record one sample with optional weight (> 0). */
    void observe(double x, double w = 1.0);

    /**
     * Fold another digest into this one (order-insensitive up to the
     * sketch's approximation; total weight adds exactly).
     */
    void merge(const TDigest &other);

    /**
     * Estimated quantile, q in [0, 1]: q<=0 returns the observed
     * minimum, q>=1 the maximum, and an empty digest returns NaN.
     * Piecewise-linear interpolation between centroid means.
     */
    double quantile(double q) const;

    /** Histogram-compatible spelling: percentile(99) = quantile(.99). */
    double percentile(double p) const { return quantile(p / 100.0); }

    /** Number of observe() samples folded in (merges included). */
    std::uint64_t count() const;

    /** Total weight (== count() for unit-weight streams). */
    double totalWeight() const;

    /** Weighted sum of samples (for _sum metric series). */
    double sum() const;

    /** Observed extremes; 0 when empty (Histogram convention). */
    double minSeen() const;
    double maxSeen() const;

    /** Centroids currently held (post-compression; for tests). */
    std::size_t centroidCount() const;

    /** The delta parameter. */
    double compression() const { return comp; }

    /** Drop all state (registry reset; instrument stays valid). */
    void reset();

    /** Compacted centroid list, sorted by mean (for tests/export). */
    std::vector<Centroid> centroids() const;

  private:
    /** Fold the observation buffer into the centroid list. */
    void compressLocked() const;

    double comp;
    std::size_t bufferLimit;
    mutable std::mutex mu;
    mutable std::vector<Centroid> cents;  //!< sorted by mean
    mutable std::vector<Centroid> buffer; //!< unmerged observations
    std::uint64_t n = 0;
    double total = 0.0;
    double weightedSum = 0.0;
    double lo;
    double hi;
};

} // namespace obs
} // namespace socflow

#endif // SOCFLOW_OBS_TDIGEST_HH
