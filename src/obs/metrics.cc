#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace socflow {
namespace obs {

namespace {

/** Atomic add for doubles via CAS (portable across C++17 targets). */
void
atomicAdd(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
}

/** Atomic min/max update via CAS. */
void
atomicMin(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

/** Canonical series key: name{k="v",...} with labels sorted by key. */
std::string
seriesKey(std::string_view name, const Labels &labels)
{
    std::string key(name);
    if (labels.empty())
        return key;
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    key += '{';
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (i)
            key += ',';
        key += sorted[i].first;
        key += "=\"";
        key += sorted[i].second;
        key += '"';
    }
    key += '}';
    return key;
}

/** Insert a label into an already-rendered series key (for dumps). */
std::string
keyWithExtraLabel(const std::string &key, const char *label_key,
                  const char *label_value)
{
    std::string extra = std::string(label_key) + "=\"" + label_value +
                        "\"";
    if (key.back() == '}') {
        std::string out = key;
        out.insert(out.size() - 1, "," + extra);
        return out;
    }
    return key + '{' + extra + '}';
}

std::string
formatValue(double v)
{
    std::ostringstream oss;
    oss.precision(12);
    oss << v;
    return oss.str();
}

} // namespace

void
Counter::add(double v) noexcept
{
    atomicAdd(val, v);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : ub(std::move(upper_bounds)),
      lo(std::numeric_limits<double>::infinity()),
      hi(-std::numeric_limits<double>::infinity())
{
    SOCFLOW_ASSERT(std::is_sorted(ub.begin(), ub.end()),
                   "histogram bounds must be sorted");
    SOCFLOW_ASSERT(std::adjacent_find(ub.begin(), ub.end()) == ub.end(),
                   "histogram bounds must be strictly increasing");
    buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(ub.size() + 1);
    for (std::size_t i = 0; i <= ub.size(); ++i)
        buckets[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double v) noexcept
{
    const std::size_t idx = static_cast<std::size_t>(
        std::upper_bound(ub.begin(), ub.end(), v) - ub.begin());
    buckets[idx].fetch_add(1, std::memory_order_relaxed);
    n.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(total, v);
    atomicMin(lo, v);
    atomicMax(hi, v);
}

double
Histogram::minSeen() const noexcept
{
    return count() ? lo.load(std::memory_order_relaxed) : 0.0;
}

double
Histogram::maxSeen() const noexcept
{
    return count() ? hi.load(std::memory_order_relaxed) : 0.0;
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> out(ub.size() + 1);
    for (std::size_t i = 0; i <= ub.size(); ++i)
        out[i] = buckets[i].load(std::memory_order_relaxed);
    return out;
}

double
Histogram::percentile(double p) const
{
    const std::uint64_t total_n = count();
    if (total_n == 0)
        return std::numeric_limits<double>::quiet_NaN();
    if (p <= 0.0)
        return lo.load(std::memory_order_relaxed);
    if (p >= 100.0)
        return hi.load(std::memory_order_relaxed);
    // Nearest-rank target (1-based).
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p / 100.0 * static_cast<double>(total_n))));

    const double observedLo = lo.load(std::memory_order_relaxed);
    const double observedHi = hi.load(std::memory_order_relaxed);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= ub.size(); ++i) {
        const std::uint64_t inBucket =
            buckets[i].load(std::memory_order_relaxed);
        if (inBucket == 0)
            continue;
        if (cum + inBucket < target) {
            cum += inBucket;
            continue;
        }
        // The target rank falls in bucket i; interpolate linearly,
        // clamping the bucket edges to the observed extremes.
        double bucketLo = i == 0 ? observedLo : ub[i - 1];
        double bucketHi = i == ub.size() ? observedHi : ub[i];
        bucketLo = std::max(bucketLo, observedLo);
        bucketHi = std::min(bucketHi, observedHi);
        const double frac = static_cast<double>(target - cum) /
                            static_cast<double>(inBucket);
        return bucketLo + frac * (bucketHi - bucketLo);
    }
    return observedHi;
}

void
Histogram::reset() noexcept
{
    for (std::size_t i = 0; i <= ub.size(); ++i)
        buckets[i].store(0, std::memory_order_relaxed);
    n.store(0, std::memory_order_relaxed);
    total.store(0.0, std::memory_order_relaxed);
    lo.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
    hi.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double>
Histogram::exponentialBounds(double lo_bound, double hi_bound,
                             std::size_t per_decade)
{
    SOCFLOW_ASSERT(lo_bound > 0.0 && hi_bound > lo_bound &&
                       per_decade > 0,
                   "bad exponential bucket parameters");
    std::vector<double> bounds;
    const double step =
        std::pow(10.0, 1.0 / static_cast<double>(per_decade));
    for (double b = lo_bound; b < hi_bound * (1.0 + 1e-12); b *= step)
        bounds.push_back(b);
    return bounds;
}

Counter &
MetricsRegistry::counter(std::string_view name, const Labels &labels)
{
    const std::string key = seriesKey(name, labels);
    std::lock_guard<std::mutex> lock(mu);
    SOCFLOW_ASSERT(!gauges.count(key) && !histograms.count(key) &&
                       !digests.count(key),
                   "metric re-registered with a different type: ", key);
    auto it = counters.find(key);
    if (it == counters.end())
        it = counters.emplace(key, std::make_unique<Counter>()).first;
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name, const Labels &labels)
{
    const std::string key = seriesKey(name, labels);
    std::lock_guard<std::mutex> lock(mu);
    SOCFLOW_ASSERT(!counters.count(key) && !histograms.count(key) &&
                       !digests.count(key),
                   "metric re-registered with a different type: ", key);
    auto it = gauges.find(key);
    if (it == gauges.end())
        it = gauges.emplace(key, std::make_unique<Gauge>()).first;
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name, const Labels &labels,
                           std::vector<double> upper_bounds)
{
    const std::string key = seriesKey(name, labels);
    std::lock_guard<std::mutex> lock(mu);
    SOCFLOW_ASSERT(!counters.count(key) && !gauges.count(key) &&
                       !digests.count(key),
                   "metric re-registered with a different type: ", key);
    auto it = histograms.find(key);
    if (it == histograms.end()) {
        if (upper_bounds.empty())
            upper_bounds = Histogram::exponentialBounds(1e-6, 1e3, 3);
        it = histograms
                 .emplace(key, std::make_unique<Histogram>(
                                   std::move(upper_bounds)))
                 .first;
    }
    return *it->second;
}

TDigest &
MetricsRegistry::tdigest(std::string_view name, const Labels &labels,
                         double compression)
{
    const std::string key = seriesKey(name, labels);
    std::lock_guard<std::mutex> lock(mu);
    SOCFLOW_ASSERT(!counters.count(key) && !gauges.count(key) &&
                       !histograms.count(key),
                   "metric re-registered with a different type: ", key);
    auto it = digests.find(key);
    if (it == digests.end())
        it = digests
                 .emplace(key, std::make_unique<TDigest>(compression))
                 .first;
    return *it->second;
}

std::size_t
MetricsRegistry::seriesCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters.size() + gauges.size() + histograms.size() +
           digests.size();
}

std::string
MetricsRegistry::textDump() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::ostringstream oss;
    for (const auto &[key, c] : counters)
        oss << key << ' ' << formatValue(c->value()) << '\n';
    for (const auto &[key, g] : gauges)
        oss << key << ' ' << formatValue(g->value()) << '\n';
    for (const auto &[key, h] : histograms) {
        oss << key << "_count " << h->count() << '\n';
        oss << key << "_sum " << formatValue(h->sum()) << '\n';
        static constexpr struct {
            const char *label;
            double p;
        } quantiles[] = {{"0.5", 50.0}, {"0.95", 95.0}, {"0.99", 99.0}};
        for (const auto &q : quantiles) {
            oss << keyWithExtraLabel(key, "quantile", q.label) << ' '
                << formatValue(h->percentile(q.p)) << '\n';
        }
    }
    for (const auto &[key, d] : digests) {
        oss << key << "_count " << d->count() << '\n';
        oss << key << "_sum " << formatValue(d->sum()) << '\n';
        static constexpr struct {
            const char *label;
            double q;
        } quantiles[] = {{"0.5", 0.5},
                         {"0.95", 0.95},
                         {"0.99", 0.99},
                         {"0.999", 0.999}};
        for (const auto &q : quantiles) {
            oss << keyWithExtraLabel(key, "quantile", q.label) << ' '
                << formatValue(d->quantile(q.q)) << '\n';
        }
    }
    return oss.str();
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::snapshotValues() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(counters.size() + gauges.size() +
                histograms.size() * 5 + digests.size() * 6);
    for (const auto &[key, c] : counters)
        out.emplace_back(key, c->value());
    for (const auto &[key, g] : gauges)
        out.emplace_back(key, g->value());
    for (const auto &[key, h] : histograms) {
        out.emplace_back(key + "_count",
                         static_cast<double>(h->count()));
        out.emplace_back(key + "_sum", h->sum());
        static constexpr struct {
            const char *label;
            double p;
        } quantiles[] = {{"0.5", 50.0}, {"0.95", 95.0}, {"0.99", 99.0}};
        for (const auto &q : quantiles)
            out.emplace_back(keyWithExtraLabel(key, "quantile", q.label),
                             h->percentile(q.p));
    }
    for (const auto &[key, d] : digests) {
        out.emplace_back(key + "_count",
                         static_cast<double>(d->count()));
        out.emplace_back(key + "_sum", d->sum());
        static constexpr struct {
            const char *label;
            double q;
        } quantiles[] = {{"0.5", 0.5},
                         {"0.95", 0.95},
                         {"0.99", 0.99},
                         {"0.999", 0.999}};
        for (const auto &q : quantiles)
            out.emplace_back(keyWithExtraLabel(key, "quantile", q.label),
                             d->quantile(q.q));
    }
    return out;
}

bool
MetricsRegistry::writeTextDump(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << textDump();
    return static_cast<bool>(out);
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &[key, c] : counters)
        c->reset();
    for (auto &[key, g] : gauges)
        g->reset();
    for (auto &[key, h] : histograms)
        h->reset();
    for (auto &[key, d] : digests)
        d->reset();
}

MetricsRegistry &
metrics()
{
    // Leaked on purpose: instrumented code caches references in
    // function-local statics whose destruction order at exit is
    // unspecified relative to a registry destructor.
    static MetricsRegistry *global = new MetricsRegistry();
    return *global;
}

} // namespace obs
} // namespace socflow
