/**
 * @file
 * Critical-path profiler & bottleneck-attribution plane (DESIGN.md
 * ch. 12).
 *
 * A passive, always-available time-attribution engine over the
 * *simulated* clock. Trainers emit phase spans on an epoch-relative
 * timeline (per logical group, or shared across all groups); at epoch
 * close the profiler folds the possibly-overlapping span stream into
 * *exclusive* per-phase seconds -- phases earlier in the Phase order
 * own contested time, Stall takes only the residual -- and enforces
 * the conservation invariant: per group, the exclusive phase times
 * sum to the epoch's wall seconds within fp tolerance.
 *
 * On top of the ledger it tracks the epoch's critical path (compute-
 * vs comm-bound per step, optimizer, fault recovery), splits the
 * comm-bound share across network resources by the flow network's
 * progressive-filling binding-constraint signal (sim/flow_network.hh
 * FlowCapture), computes per-layer compute/comm windows and the
 * compute-comm overlap ratio, and exports everything as a PerfReport
 * (JSON via --profile-out, a human "perf doctor" summary, and
 * phase_seconds_digest / overlap_ratio / critical_path_share /
 * flow_resource_utilization series in the metrics registry).
 *
 * Zero perturbation: every hook is gated on one relaxed atomic, and
 * nothing recorded here feeds back into timing, RNG draws, memoized
 * cost caches, or the fault timeline -- profiling on vs. off is
 * bit-exact (asserted in tests/test_parallel_determinism.cc).
 * Folding sorts the span ledger, so concurrent addSpan() insertion
 * order cannot change any total (tests/test_profiler.cc).
 */

#ifndef SOCFLOW_OBS_PROFILER_HH
#define SOCFLOW_OBS_PROFILER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace socflow {
namespace obs {

/**
 * Exclusive wall-time phases, in fold priority order: when spans
 * overlap, the earlier phase owns the contested interval. Stall is
 * last by construction -- it is the residual nobody else claims
 * (straggler wait inside the compute window).
 */
enum class Phase : unsigned {
    Forward = 0,       //!< forward compute (first third of a group step)
    Backward,          //!< backward compute (remaining two thirds)
    Update,            //!< optimizer update
    Wave1Sync,         //!< CG wave 1: intra-board rings
    Wave2Sync,         //!< CG wave 2+ / unplanned contended sync
    HierarchicalSync,  //!< per-epoch cross-group aggregation tiers
    PsPush,            //!< parameter-server gradient push
    PsPull,            //!< parameter-server weight pull
    Recovery,          //!< fault recovery (timeouts, re-syncs, rejoin)
    Paused,            //!< quorum-paused epochs
    Stall,             //!< residual: straggler / idle wait
};

/** Number of Phase values (Stall is last). */
constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(Phase::Stall) + 1;

/** Metric-label name of a phase ("forward", "wave1_sync", ...). */
const char *phaseName(Phase p);

/** addSpan() slot meaning "applies to every group of this epoch". */
constexpr std::size_t kAllSlots = static_cast<std::size_t>(-1);

/** Per-layer compute/comm windows accumulated over profiled epochs. */
struct PerfLayer {
    std::string name;
    double computeSeconds = 0.0;
    double commSeconds = 0.0;
    /** Comm seconds hidden under compute (overlap scheduling). */
    double hiddenSeconds = 0.0;

    double
    overlapRatio() const
    {
        return commSeconds > 0.0 ? hiddenSeconds / commSeconds : 0.0;
    }
};

/**
 * One bottleneck candidate: a flow-network resource (uplink, switch,
 * core, SoC port) or a synthetic lane ("compute", "optimizer",
 * "fault-recovery", "network" when no capture ran).
 */
struct PerfResource {
    std::string name;
    /** Seconds of the critical path attributed to this resource. */
    double criticalSeconds = 0.0;
    /** criticalSeconds / total critical-path seconds. */
    double criticalShare = 0.0;
    /** Wall seconds predicted recoverable by relieving it. */
    double predictedBenefitSeconds = 0.0;
    /** Captured busy seconds / profiled wall seconds (network only). */
    double utilization = 0.0;
    /**
     * Unused capacity fraction while busy: 1 - achieved/capacity.
     * Under fan-in congestion collapse the binding resource itself
     * shows headroom (= 1 - u^-gamma) recoverable by reducing
     * concurrent users, not by adding bandwidth.
     */
    double headroom = 0.0;
    double busySeconds = 0.0;
    double bytes = 0.0;
    /** Seconds it was the progressive-filling binding constraint. */
    double bindingSeconds = 0.0;
};

/** Aggregated attribution over every profiled epoch. */
struct PerfReport {
    std::size_t epochs = 0;
    double wallSeconds = 0.0;
    /** Per-group-mean exclusive seconds by phase (sums to wall). */
    double exclusiveSeconds[kNumPhases] = {};
    /** Raw (pre-exclusivity) per-group-mean span seconds by phase. */
    double inclusiveSeconds[kNumPhases] = {};
    /** Sum over steps of the step compute window (slowest group). */
    double computeWindowSeconds = 0.0;
    /** Sum over steps of the sync window, plus epoch aggregations. */
    double commWindowSeconds = 0.0;
    /** Comm seconds hidden under compute across all steps. */
    double hiddenCommSeconds = 0.0;
    /** hiddenCommSeconds / commWindowSeconds (0 when no comm). */
    double overlapRatio = 0.0;
    bool conservationOk = true;
    /** Worst per-slot relative conservation error seen. */
    double worstConservationError = 0.0;
    std::uint64_t timelineHash = 0;
    std::vector<PerfLayer> layers;
    /** Sorted by criticalSeconds descending. */
    std::vector<PerfResource> resources;

    /** Full JSON document (--profile-out). */
    std::string toJson() const;

    /** Human-readable end-of-run summary: top-3 bottlenecks with the
     *  predicted benefit of relieving each, plus the conservation and
     *  overlap verdicts. */
    std::string doctorSummary() const;

    /** Compact JSON for the flight recorder's post-mortem dump. */
    std::string summaryJson() const;
};

/**
 * The attribution engine. One process-wide instance via profiler();
 * enabled by default, disabled with SOCFLOW_PROFILE=0 (or "off").
 *
 * Threading: addSpan() is safe from any thread (the parallel step
 * workers); every other hook is called from the trainers' serial
 * sections. report() may be called at any time between epochs.
 */
class Profiler
{
  public:
    Profiler();

    /** Cheap hook gate (one relaxed atomic load). */
    bool
    enabled() const noexcept
    {
        return on.load(std::memory_order_relaxed);
    }

    void setEnabled(bool enable) noexcept;

    /** Drop all accumulated state (reports, ledgers, layer table). */
    void reset();

    /**
     * Install the per-layer weight table: (layer name, trainable
     * scalar count) in model order. Compute and comm windows are
     * split across layers proportionally to parameter count; comm is
     * laid out in backward order (last layer's gradients transfer
     * first). Replaces any previous table -- with several trainers
     * alive, layer attribution follows the latest registrant.
     */
    void registerLayers(
        const std::vector<std::pair<std::string, std::size_t>> &layer_params);

    /** Open an epoch ledger with `slots` per-group span slots. */
    void beginEpoch(std::size_t slots);

    /** Groups shrank mid-epoch: slots >= the minimum count observed
     *  are dropped at fold time (their ledgers are incomplete). */
    void noteSlotCount(std::size_t slots);

    /**
     * Record one phase span on the epoch-relative timeline. `slot` is
     * a group index or kAllSlots for spans shared by every group.
     * Thread-safe; insertion order never affects fold results.
     */
    void addSpan(std::size_t slot, Phase phase, double start_s,
                 double end_s);

    /**
     * Account one step's compute window (slowest group) and sync
     * window for overlap-ratio and per-layer attribution. With
     * `overlapped`, min(compute, sync) of the comm is hidden.
     */
    void noteStepWindows(double compute_s, double sync_s,
                         bool overlapped);

    /** Epoch-granular comm (cross-group aggregation): never hidden. */
    void noteEpochComm(double sync_s);

    /** Charge `seconds` of the epoch's critical path to a synthetic
     *  lane, with the wall seconds relieving it would recover. */
    void attributeCritical(const std::string &resource, double seconds,
                           double relief_s);

    /**
     * Charge comm-bound critical-path seconds; split at epoch close
     * across this epoch's captured resources proportionally to their
     * bindingSeconds ("network" when no capture was recorded).
     */
    void attributeCommCritical(double seconds, double relief_s);

    /** Feed one resource's captured usage for the closing epoch
     *  (paper-scale seconds; see sim::FlowCapture). */
    void noteResourceUsage(const std::string &name, double capacity_bps,
                           double busy_s, double bytes_through,
                           double binding_s);

    /** Stamp the trainer's current fault-timeline hash (reported so
     *  profiled/unprofiled runs can be compared externally). */
    void noteTimelineHash(std::uint64_t hash);

    /**
     * Close the epoch: fold the span ledger per slot into exclusive
     * phase seconds, check conservation against `wall_s`, resolve
     * comm critical-path splits, publish the metric series, and
     * accumulate into the cumulative report.
     */
    void endEpoch(double wall_s);

    /** Cumulative report over every epoch since the last reset(). */
    PerfReport report() const;

    /** Epochs folded since the last reset(). */
    std::size_t epochsProfiled() const;

  private:
    struct Span {
        std::size_t slot;
        Phase phase;
        double startS;
        double endS;
    };

    struct LayerAcc {
        std::string name;
        double weight;  //!< parameter-count fraction of the model
        double computeS = 0.0;
        double commS = 0.0;
        double hiddenS = 0.0;
    };

    struct ResourceAcc {
        double capacityBps = 0.0;
        double busyS = 0.0;
        double bytes = 0.0;
        double bindingS = 0.0;
        double criticalS = 0.0;
        double reliefS = 0.0;
    };

    /** Fold one slot's spans into exclusive per-phase seconds. */
    static void foldSlot(std::vector<Span> &slot_spans,
                         double exclusive[kNumPhases]);

    void publishMetricsLocked();

    std::atomic<bool> on{true};

    mutable std::mutex mu;
    // --- current epoch ledger ---
    std::vector<Span> spans;
    std::size_t slotCount = 0;
    std::size_t minSlotCount = 0;
    bool epochOpen = false;
    std::map<std::string, ResourceAcc> epochRes;
    double pendingCommCriticalS = 0.0;
    double pendingCommReliefS = 0.0;

    // --- cumulative state ---
    std::size_t epochs = 0;
    double wallS = 0.0;
    double cumExclusive[kNumPhases] = {};
    double cumInclusive[kNumPhases] = {};
    double computeWinS = 0.0;
    double commWinS = 0.0;
    double hiddenS = 0.0;
    bool conservationOk = true;
    double worstConsErr = 0.0;
    std::uint64_t lastTimelineHash = 0;
    std::vector<LayerAcc> layers;
    std::map<std::string, ResourceAcc> cumRes;
};

/** The process-wide profiler used by the trainers and benches. */
Profiler &profiler();

} // namespace obs
} // namespace socflow

#endif // SOCFLOW_OBS_PROFILER_HH
