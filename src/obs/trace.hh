/**
 * @file
 * Span-based execution tracer with Chrome trace_event JSON export.
 *
 * Two clock domains share one trace, separated by Chrome "process"
 * id so they never interleave on a track:
 *
 *  - the *simulated* SoC-Cluster timeline (kPidSim): trainers emit
 *    complete spans with explicit simulated timestamps -- epoch,
 *    step, per-group compute, per-wave communication, optimizer
 *    update -- so compute/communication overlap from CG planning is
 *    visible and machine-checkable;
 *  - the *host* wall clock (kPidHost): nested RAII spans around real
 *    work (checkpoint I/O, topology rebuilds, whole epochs).
 *
 * Disabled mode (the default) is near-zero cost: every record call
 * checks one relaxed atomic and returns without allocating, so
 * instrumentation can stay in hot paths permanently. Load the
 * exported JSON in chrome://tracing or https://ui.perfetto.dev.
 */

#ifndef SOCFLOW_OBS_TRACE_HH
#define SOCFLOW_OBS_TRACE_HH

#include <atomic>
#include <cstddef>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace socflow {
namespace obs {

/** Chrome pid of the simulated SoC-Cluster timeline. */
constexpr int kPidSim = 1;
/** Chrome pid of host wall-clock spans. */
constexpr int kPidHost = 2;

/** Simulated-timeline track (tid) conventions used by the trainers. */
constexpr int kTrackControl = 0;    //!< epoch/step framing spans
constexpr int kTrackComm = 1;       //!< sync waves + epoch aggregation
constexpr int kTrackUpdate = 2;     //!< optimizer updates
constexpr int kTrackGroupBase = 10; //!< + g: logical group g compute

/** One recorded trace event (Chrome trace_event semantics). */
struct TraceEvent {
    std::string name;
    std::string category;
    char phase = 'X';  //!< X=complete, i=instant, M=metadata
    int pid = kPidSim;
    int tid = 0;
    double tsUs = 0.0;   //!< start, microseconds
    double durUs = 0.0;  //!< duration, microseconds ('X' only)
    std::vector<std::pair<std::string, std::string>> args;
};

/** Numeric argument attached to a span, e.g. {"wave", 1}. */
struct SpanArg {
    std::string_view key;
    double value;
};

/** Append `s` JSON-escaped (no surrounding quotes) to `out`. */
void appendJsonEscaped(std::string &out, std::string_view s);

/** Append one event as a Chrome trace_event JSON object. */
void appendTraceEventJson(std::string &out, const TraceEvent &e);

class StreamingTraceSink;
class FlightRecorder;

/**
 * Collects trace events from any thread. One process-wide instance
 * is available via tracer(); tests may create their own.
 *
 * Routing: an attached FlightRecorder receives a copy of every
 * recorded event (its bounded ring keeps only the last N); with an
 * attached StreamingTraceSink, events then stream to the sink's
 * bounded ring instead of accumulating in the in-memory buffer, so
 * snapshot()/chromeTraceJson() cover only events recorded while no
 * sink was attached (the small-run export path).
 */
class Tracer
{
  public:
    Tracer();

    /**
     * True when events are being recorded -- explicitly via
     * setEnabled(true), or implicitly while a flight recorder is
     * attached (the recorder needs the span stream even when full
     * tracing is off; its ring bounds the cost).
     */
    bool
    enabled() const noexcept
    {
        return on.load(std::memory_order_relaxed) ||
               recorder.load(std::memory_order_relaxed) != nullptr;
    }

    /** Turn recording on or off (off drops new events, keeps old). */
    void setEnabled(bool enable);

    /**
     * Attach a streaming sink (not owned; nullptr detaches). While
     * attached, recorded events are handed to the sink's bounded
     * ring (StreamingTraceSink::offer) instead of the in-memory
     * buffer. Detach before closing/destroying the sink.
     */
    void setStreamSink(StreamingTraceSink *sink)
    {
        streamSink.store(sink, std::memory_order_relaxed);
    }

    /** The attached streaming sink, or nullptr. */
    StreamingTraceSink *streamSinkAttached() const
    {
        return streamSink.load(std::memory_order_relaxed);
    }

    /**
     * Attach a flight recorder (not owned; nullptr detaches). It
     * receives a copy of every recorded event; attaching also turns
     * recording on (see enabled()).
     */
    void attachFlightRecorder(FlightRecorder *rec)
    {
        recorder.store(rec, std::memory_order_relaxed);
    }

    /** The attached flight recorder, or nullptr. */
    FlightRecorder *flightRecorderAttached() const
    {
        return recorder.load(std::memory_order_relaxed);
    }

    /** Drop all recorded events. */
    void clear();

    /** Number of events recorded so far. */
    std::size_t eventCount() const;

    /** Copy of the recorded events (for tests and custom exports). */
    std::vector<TraceEvent> snapshot() const;

    /** Chrome metadata: name a process (clock domain). */
    void setProcessName(int pid, std::string_view name);

    /** Chrome metadata: name a track within a process. */
    void setTrackName(int pid, int tid, std::string_view name);

    /**
     * Record a complete span on the simulated timeline with explicit
     * timestamps (seconds). No-op without allocation when disabled.
     */
    void recordSpan(std::string_view name, std::string_view category,
                    int tid, double start_s, double dur_s,
                    std::initializer_list<SpanArg> args = {});

    /** Instant event on the simulated timeline. */
    void recordInstant(std::string_view name,
                       std::string_view category, int tid,
                       double ts_s);

    /**
     * Open a nested wall-clock span on the host timeline. Pair with
     * endSpan() (or use ScopedSpan). Nesting is per thread.
     */
    void beginSpan(std::string_view name, std::string_view category,
                   int tid = 0);

    /**
     * Close the innermost wall-clock span opened by this thread.
     * Closing with no open span is an internal error (panic).
     */
    void endSpan();

    /** This thread's current wall-clock span nesting depth. */
    std::size_t openSpanDepth() const;

    /** Serialize to Chrome trace_event JSON. */
    std::string chromeTraceJson() const;

    /** Write chromeTraceJson() to a file; false on I/O failure. */
    bool writeChromeTrace(const std::string &path) const;

  private:
    double nowUs() const;
    void push(TraceEvent e);

    std::atomic<bool> on{false};
    std::atomic<StreamingTraceSink *> streamSink{nullptr};
    std::atomic<FlightRecorder *> recorder{nullptr};
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
    /** steady_clock anchor for wall-clock timestamps, microseconds. */
    double anchorUs = 0.0;
};

/** The process-wide tracer used by the instrumented subsystems. */
Tracer &tracer();

/** RAII wall-clock span on the host timeline. */
class ScopedSpan
{
  public:
    ScopedSpan(Tracer &t, std::string_view name,
               std::string_view category, int tid = 0)
        : tr(t)
    {
        tr.beginSpan(name, category, tid);
    }

    ~ScopedSpan() { tr.endSpan(); }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    Tracer &tr;
};

} // namespace obs
} // namespace socflow

#endif // SOCFLOW_OBS_TRACE_HH
