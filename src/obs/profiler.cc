#include "obs/profiler.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace socflow {
namespace obs {

namespace {

const char *const kPhaseNames[kNumPhases] = {
    "forward",  "backward",          "update",  "wave1_sync",
    "wave2_sync", "hierarchical_sync", "ps_push", "ps_pull",
    "recovery", "paused",            "stall",
};

// Conservation tolerance: exclusive phase seconds must reproduce the
// epoch's wall seconds up to fp accumulation noise. Absolute floor
// covers near-zero epochs, relative bound covers long ones.
constexpr double kConsAbsTol = 1e-9;
constexpr double kConsRelTol = 1e-6;

void
appendDouble(std::string &out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    out += buf;
}

void
appendQuoted(std::string &out, std::string_view s)
{
    out += '"';
    appendJsonEscaped(out, s);
    out += '"';
}

/**
 * Sorted, disjoint interval list. subtractAndInsert() returns the
 * length of [s, e) not already covered, then merges the interval in.
 */
class Covered
{
  public:
    double
    subtractAndInsert(double s, double e)
    {
        double uncovered = e - s;
        // First interval whose end is past s.
        auto it = std::lower_bound(
            ivs.begin(), ivs.end(), s,
            [](const std::pair<double, double> &iv, double v) {
                return iv.second < v;
            });
        const std::size_t firstIdx =
            static_cast<std::size_t>(it - ivs.begin());
        for (auto j = it; j != ivs.end() && j->first < e; ++j) {
            const double lo = std::max(s, j->first);
            const double hi = std::min(e, j->second);
            if (hi > lo)
                uncovered -= hi - lo;
        }
        // Merge [s, e) with every overlapping/adjacent interval.
        double ns = s, ne = e;
        std::size_t lo = firstIdx, hi = firstIdx;
        while (hi < ivs.size() && ivs[hi].first <= ne) {
            ns = std::min(ns, ivs[hi].first);
            ne = std::max(ne, ivs[hi].second);
            ++hi;
        }
        if (lo == hi) {
            ivs.insert(ivs.begin() + static_cast<std::ptrdiff_t>(lo),
                       {ns, ne});
        } else {
            ivs[lo] = {ns, ne};
            ivs.erase(ivs.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                      ivs.begin() + static_cast<std::ptrdiff_t>(hi));
        }
        return std::max(0.0, uncovered);
    }

  private:
    std::vector<std::pair<double, double>> ivs;
};

} // namespace

const char *
phaseName(Phase p)
{
    const std::size_t i = static_cast<std::size_t>(p);
    SOCFLOW_ASSERT(i < kNumPhases, "bad phase");
    return kPhaseNames[i];
}

Profiler::Profiler()
{
    const char *env = std::getenv("SOCFLOW_PROFILE");
    if (env != nullptr &&
        (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0))
        on.store(false, std::memory_order_relaxed);
}

void
Profiler::setEnabled(bool enable) noexcept
{
    on.store(enable, std::memory_order_relaxed);
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    spans.clear();
    slotCount = 0;
    minSlotCount = 0;
    epochOpen = false;
    epochRes.clear();
    pendingCommCriticalS = 0.0;
    pendingCommReliefS = 0.0;
    epochs = 0;
    wallS = 0.0;
    std::fill(cumExclusive, cumExclusive + kNumPhases, 0.0);
    std::fill(cumInclusive, cumInclusive + kNumPhases, 0.0);
    computeWinS = 0.0;
    commWinS = 0.0;
    hiddenS = 0.0;
    conservationOk = true;
    worstConsErr = 0.0;
    lastTimelineHash = 0;
    layers.clear();
    cumRes.clear();
}

void
Profiler::registerLayers(
    const std::vector<std::pair<std::string, std::size_t>> &layer_params)
{
    std::lock_guard<std::mutex> lock(mu);
    layers.clear();
    double total = 0.0;
    for (const auto &lp : layer_params)
        total += static_cast<double>(lp.second);
    if (total <= 0.0)
        return;
    layers.reserve(layer_params.size());
    for (const auto &lp : layer_params) {
        LayerAcc acc;
        acc.name = lp.first;
        acc.weight = static_cast<double>(lp.second) / total;
        layers.push_back(std::move(acc));
    }
}

void
Profiler::beginEpoch(std::size_t slots)
{
    std::lock_guard<std::mutex> lock(mu);
    spans.clear();
    slotCount = slots;
    minSlotCount = slots;
    epochOpen = true;
    epochRes.clear();
    pendingCommCriticalS = 0.0;
    pendingCommReliefS = 0.0;
}

void
Profiler::noteSlotCount(std::size_t slots)
{
    std::lock_guard<std::mutex> lock(mu);
    if (epochOpen)
        minSlotCount = std::min(minSlotCount, slots);
}

void
Profiler::addSpan(std::size_t slot, Phase phase, double start_s,
                  double end_s)
{
    if (end_s <= start_s)
        return;
    std::lock_guard<std::mutex> lock(mu);
    if (!epochOpen)
        return;
    spans.push_back(Span{slot, phase, start_s, end_s});
}

void
Profiler::noteStepWindows(double compute_s, double sync_s,
                          bool overlapped)
{
    std::lock_guard<std::mutex> lock(mu);
    if (!epochOpen)
        return;
    computeWinS += compute_s;
    commWinS += sync_s;
    const double hidden =
        overlapped ? std::min(compute_s, sync_s) : 0.0;
    hiddenS += hidden;
    if (layers.empty())
        return;
    // Gradients transfer in backward order: the last layer's bucket
    // is ready first and overlaps the most remaining compute.
    double commOff = 0.0;
    const double hideEnd = overlapped ? compute_s : 0.0;
    for (std::size_t i = layers.size(); i-- > 0;) {
        LayerAcc &l = layers[i];
        l.computeS += compute_s * l.weight;
        const double c = sync_s * l.weight;
        l.commS += c;
        const double lo = std::min(commOff, hideEnd);
        const double hi = std::min(commOff + c, hideEnd);
        if (hi > lo)
            l.hiddenS += hi - lo;
        commOff += c;
    }
}

void
Profiler::noteEpochComm(double sync_s)
{
    std::lock_guard<std::mutex> lock(mu);
    if (!epochOpen)
        return;
    commWinS += sync_s;
    for (std::size_t i = layers.size(); i-- > 0;)
        layers[i].commS += sync_s * layers[i].weight;
}

void
Profiler::attributeCritical(const std::string &resource, double seconds,
                            double relief_s)
{
    if (seconds <= 0.0)
        return;
    std::lock_guard<std::mutex> lock(mu);
    ResourceAcc &acc = cumRes[resource];
    acc.criticalS += seconds;
    acc.reliefS += std::max(0.0, relief_s);
}

void
Profiler::attributeCommCritical(double seconds, double relief_s)
{
    if (seconds <= 0.0)
        return;
    std::lock_guard<std::mutex> lock(mu);
    pendingCommCriticalS += seconds;
    pendingCommReliefS += std::max(0.0, relief_s);
}

void
Profiler::noteResourceUsage(const std::string &name, double capacity_bps,
                            double busy_s, double bytes_through,
                            double binding_s)
{
    std::lock_guard<std::mutex> lock(mu);
    if (!epochOpen)
        return;
    ResourceAcc &acc = epochRes[name];
    acc.capacityBps = capacity_bps;
    acc.busyS += busy_s;
    acc.bytes += bytes_through;
    acc.bindingS += binding_s;
}

void
Profiler::noteTimelineHash(std::uint64_t hash)
{
    std::lock_guard<std::mutex> lock(mu);
    lastTimelineHash = hash;
}

void
Profiler::foldSlot(std::vector<Span> &slot_spans,
                   double exclusive[kNumPhases])
{
    // Deterministic fold: sort by (phase priority, interval), so the
    // totals are independent of recording thread/order.
    std::sort(slot_spans.begin(), slot_spans.end(),
              [](const Span &a, const Span &b) {
                  if (a.phase != b.phase)
                      return a.phase < b.phase;
                  if (a.startS != b.startS)
                      return a.startS < b.startS;
                  return a.endS < b.endS;
              });
    Covered covered;
    for (const Span &s : slot_spans)
        exclusive[static_cast<std::size_t>(s.phase)] +=
            covered.subtractAndInsert(s.startS, s.endS);
}

void
Profiler::endEpoch(double wall_s)
{
    std::lock_guard<std::mutex> lock(mu);
    if (!epochOpen)
        return;
    epochOpen = false;

    // Partition the ledger: per-slot spans plus the shared kAllSlots
    // spans, replicated into every surviving slot. Slots at or above
    // the minimum observed group count have incomplete ledgers
    // (groups shrank mid-epoch) and are dropped.
    const std::size_t slots = std::max<std::size_t>(1, minSlotCount);
    std::vector<std::vector<Span>> perSlot(slots);
    for (const Span &s : spans) {
        if (s.slot == kAllSlots) {
            for (std::size_t g = 0; g < slots; ++g)
                perSlot[g].push_back(s);
        } else if (s.slot < slots) {
            perSlot[s.slot].push_back(s);
        }
    }

    double meanExcl[kNumPhases] = {};
    double meanIncl[kNumPhases] = {};
    for (std::size_t g = 0; g < slots; ++g) {
        double excl[kNumPhases] = {};
        for (const Span &s : perSlot[g])
            meanIncl[static_cast<std::size_t>(s.phase)] +=
                s.endS - s.startS;
        foldSlot(perSlot[g], excl);
        double sum = 0.0;
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            sum += excl[p];
            meanExcl[p] += excl[p];
        }
        const double err = std::fabs(sum - wall_s);
        const double rel =
            wall_s > 0.0 ? err / wall_s : err;
        worstConsErr = std::max(worstConsErr, rel);
        if (err > kConsAbsTol && rel > kConsRelTol)
            conservationOk = false;
    }
    const double inv = 1.0 / static_cast<double>(slots);
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        cumExclusive[p] += meanExcl[p] * inv;
        cumInclusive[p] += meanIncl[p] * inv;
    }
    wallS += wall_s;
    ++epochs;

    // Resolve comm-bound critical path: split across this epoch's
    // captured resources by how long each was the binding constraint.
    if (pendingCommCriticalS > 0.0) {
        double totalBinding = 0.0;
        for (const auto &kv : epochRes)
            totalBinding += kv.second.bindingS;
        if (totalBinding > 0.0) {
            for (const auto &kv : epochRes) {
                const double share = kv.second.bindingS / totalBinding;
                if (share <= 0.0)
                    continue;
                ResourceAcc &acc = cumRes[kv.first];
                acc.criticalS += pendingCommCriticalS * share;
                acc.reliefS += pendingCommReliefS * share;
            }
        } else {
            ResourceAcc &acc = cumRes["network"];
            acc.criticalS += pendingCommCriticalS;
            acc.reliefS += pendingCommReliefS;
        }
        pendingCommCriticalS = 0.0;
        pendingCommReliefS = 0.0;
    }
    for (const auto &kv : epochRes) {
        ResourceAcc &acc = cumRes[kv.first];
        acc.capacityBps = kv.second.capacityBps;
        acc.busyS += kv.second.busyS;
        acc.bytes += kv.second.bytes;
        acc.bindingS += kv.second.bindingS;
    }
    epochRes.clear();
    spans.clear();

    publishMetricsLocked();
}

void
Profiler::publishMetricsLocked()
{
    MetricsRegistry &m = metrics();
    const double inv = epochs > 0
                           ? 1.0 / static_cast<double>(epochs)
                           : 0.0;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        // Per-epoch mean exclusive seconds feed the distribution.
        m.tdigest("phase_seconds_digest",
                  {{"phase", kPhaseNames[p]}})
            .observe(cumExclusive[p] * inv);
    }
    m.gauge("overlap_ratio")
        .set(commWinS > 0.0 ? hiddenS / commWinS : 0.0);
    double totalCritical = 0.0;
    for (const auto &kv : cumRes)
        totalCritical += kv.second.criticalS;
    for (const auto &kv : cumRes) {
        if (kv.second.criticalS > 0.0 && totalCritical > 0.0)
            m.gauge("critical_path_share", {{"resource", kv.first}})
                .set(kv.second.criticalS / totalCritical);
        if (kv.second.busyS > 0.0 && wallS > 0.0)
            m.gauge("flow_resource_utilization",
                    {{"resource", kv.first}})
                .set(kv.second.busyS / wallS);
    }
}

PerfReport
Profiler::report() const
{
    std::lock_guard<std::mutex> lock(mu);
    PerfReport r;
    r.epochs = epochs;
    r.wallSeconds = wallS;
    std::copy(cumExclusive, cumExclusive + kNumPhases,
              r.exclusiveSeconds);
    std::copy(cumInclusive, cumInclusive + kNumPhases,
              r.inclusiveSeconds);
    r.computeWindowSeconds = computeWinS;
    r.commWindowSeconds = commWinS;
    r.hiddenCommSeconds = hiddenS;
    r.overlapRatio = commWinS > 0.0 ? hiddenS / commWinS : 0.0;
    r.conservationOk = conservationOk;
    r.worstConservationError = worstConsErr;
    r.timelineHash = lastTimelineHash;
    r.layers.reserve(layers.size());
    for (const LayerAcc &l : layers) {
        PerfLayer pl;
        pl.name = l.name;
        pl.computeSeconds = l.computeS;
        pl.commSeconds = l.commS;
        pl.hiddenSeconds = l.hiddenS;
        r.layers.push_back(std::move(pl));
    }
    double totalCritical = 0.0;
    for (const auto &kv : cumRes)
        totalCritical += kv.second.criticalS;
    r.resources.reserve(cumRes.size());
    for (const auto &kv : cumRes) {
        const ResourceAcc &a = kv.second;
        PerfResource pr;
        pr.name = kv.first;
        pr.criticalSeconds = a.criticalS;
        pr.criticalShare =
            totalCritical > 0.0 ? a.criticalS / totalCritical : 0.0;
        pr.predictedBenefitSeconds = a.reliefS;
        pr.utilization = wallS > 0.0 ? a.busyS / wallS : 0.0;
        pr.busySeconds = a.busyS;
        pr.bytes = a.bytes;
        pr.bindingSeconds = a.bindingS;
        if (a.busyS > 0.0 && a.capacityBps > 0.0) {
            const double achieved = a.bytes / a.busyS;
            pr.headroom =
                std::max(0.0, 1.0 - achieved / a.capacityBps);
        }
        r.resources.push_back(std::move(pr));
    }
    std::sort(r.resources.begin(), r.resources.end(),
              [](const PerfResource &a, const PerfResource &b) {
                  if (a.criticalSeconds != b.criticalSeconds)
                      return a.criticalSeconds > b.criticalSeconds;
                  return a.name < b.name;
              });
    return r;
}

std::size_t
Profiler::epochsProfiled() const
{
    std::lock_guard<std::mutex> lock(mu);
    return epochs;
}

std::string
PerfReport::toJson() const
{
    std::string out;
    out.reserve(2048);
    out += "{\"epochs\":";
    appendDouble(out, static_cast<double>(epochs));
    out += ",\"wall_seconds\":";
    appendDouble(out, wallSeconds);
    char hashBuf[24];
    std::snprintf(hashBuf, sizeof hashBuf, "%016llx",
                  static_cast<unsigned long long>(timelineHash));
    out += ",\"timeline_hash\":\"";
    out += hashBuf;
    out += "\",\"conservation_ok\":";
    out += conservationOk ? "true" : "false";
    out += ",\"worst_conservation_error\":";
    appendDouble(out, worstConservationError);
    out += ",\"overlap_ratio\":";
    appendDouble(out, overlapRatio);
    out += ",\"phases\":{";
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        if (p)
            out += ',';
        appendQuoted(out, kPhaseNames[p]);
        out += ":{\"exclusive_seconds\":";
        appendDouble(out, exclusiveSeconds[p]);
        out += ",\"inclusive_seconds\":";
        appendDouble(out, inclusiveSeconds[p]);
        out += '}';
    }
    out += "},\"step_windows\":{\"compute_seconds\":";
    appendDouble(out, computeWindowSeconds);
    out += ",\"comm_seconds\":";
    appendDouble(out, commWindowSeconds);
    out += ",\"hidden_comm_seconds\":";
    appendDouble(out, hiddenCommSeconds);
    out += "},\"layers\":[";
    for (std::size_t i = 0; i < layers.size(); ++i) {
        if (i)
            out += ',';
        out += "{\"name\":";
        appendQuoted(out, layers[i].name);
        out += ",\"compute_seconds\":";
        appendDouble(out, layers[i].computeSeconds);
        out += ",\"comm_seconds\":";
        appendDouble(out, layers[i].commSeconds);
        out += ",\"hidden_comm_seconds\":";
        appendDouble(out, layers[i].hiddenSeconds);
        out += ",\"overlap_ratio\":";
        appendDouble(out, layers[i].overlapRatio());
        out += '}';
    }
    out += "],\"resources\":[";
    for (std::size_t i = 0; i < resources.size(); ++i) {
        const PerfResource &r = resources[i];
        if (i)
            out += ',';
        out += "{\"name\":";
        appendQuoted(out, r.name);
        out += ",\"critical_path_seconds\":";
        appendDouble(out, r.criticalSeconds);
        out += ",\"critical_path_share\":";
        appendDouble(out, r.criticalShare);
        out += ",\"predicted_benefit_seconds\":";
        appendDouble(out, r.predictedBenefitSeconds);
        out += ",\"utilization\":";
        appendDouble(out, r.utilization);
        out += ",\"headroom\":";
        appendDouble(out, r.headroom);
        out += ",\"busy_seconds\":";
        appendDouble(out, r.busySeconds);
        out += ",\"bytes\":";
        appendDouble(out, r.bytes);
        out += ",\"binding_seconds\":";
        appendDouble(out, r.bindingSeconds);
        out += '}';
    }
    out += "]}";
    return out;
}

std::string
PerfReport::doctorSummary() const
{
    std::string out;
    char buf[256];
    out += "=== SoCFlow perf doctor ===\n";
    std::snprintf(buf, sizeof buf,
                  "profiled %zu epoch(s), %.6g simulated seconds\n",
                  epochs, wallSeconds);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "conservation: %s (worst relative error %.3g)\n",
                  conservationOk ? "OK" : "VIOLATED",
                  worstConservationError);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "compute/comm overlap ratio: %.3f\n", overlapRatio);
    out += buf;
    out += "top bottlenecks:\n";
    const std::size_t n = std::min<std::size_t>(3, resources.size());
    for (std::size_t i = 0; i < n; ++i) {
        const PerfResource &r = resources[i];
        std::snprintf(
            buf, sizeof buf,
            "  %zu. %s -- %.1f%% of critical path; relieving it "
            "saves ~%.6g s",
            i + 1, r.name.c_str(), r.criticalShare * 100.0,
            r.predictedBenefitSeconds);
        out += buf;
        if (r.busySeconds > 0.0) {
            std::snprintf(buf, sizeof buf,
                          " (utilization %.2f, headroom %.2f)",
                          r.utilization, r.headroom);
            out += buf;
        }
        out += '\n';
    }
    if (n == 0)
        out += "  (none attributed)\n";
    return out;
}

std::string
PerfReport::summaryJson() const
{
    std::string out;
    out += "{\"epochs\":";
    appendDouble(out, static_cast<double>(epochs));
    out += ",\"conservation_ok\":";
    out += conservationOk ? "true" : "false";
    out += ",\"worst_conservation_error\":";
    appendDouble(out, worstConservationError);
    out += ",\"overlap_ratio\":";
    appendDouble(out, overlapRatio);
    out += ",\"top_bottlenecks\":[";
    const std::size_t n = std::min<std::size_t>(3, resources.size());
    for (std::size_t i = 0; i < n; ++i) {
        const PerfResource &r = resources[i];
        if (i)
            out += ',';
        out += "{\"resource\":";
        appendQuoted(out, r.name);
        out += ",\"critical_path_share\":";
        appendDouble(out, r.criticalShare);
        out += ",\"predicted_benefit_seconds\":";
        appendDouble(out, r.predictedBenefitSeconds);
        out += '}';
    }
    out += "]}";
    return out;
}

Profiler &
profiler()
{
    static Profiler instance;
    return instance;
}

} // namespace obs
} // namespace socflow
