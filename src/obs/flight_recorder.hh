/**
 * @file
 * Crash flight recorder: last-N spans + a metrics snapshot, dumped
 * as a post-mortem file when a typed failure fires.
 *
 * Long harvested runs die in ways a final trace export never sees --
 * the process either aborts (unsurvivable crash) or the interesting
 * events scrolled out of view hours ago. The flight recorder keeps
 * the most recent N trace events in a pre-allocated ring (constant
 * memory, overwrite-oldest) regardless of where the full trace is
 * going, and on demand writes a single JSON post-mortem containing:
 *
 *   - the failure reason (e.g. "corrupt-retry-exhausted"),
 *   - the run's deterministic fault-timeline hash (so the chaos
 *     harness can replay the exact failing schedule),
 *   - the last-N spans, newest last, in Chrome trace_event form,
 *   - a full metrics snapshot at the moment of failure.
 *
 * The instrumented subsystems call flightRecorder().dumpPostMortem()
 * at every typed-failure site (CorruptRetryExhausted, checkpoint
 * retry exhaustion, unsurvivable crash); the dump is a no-op until
 * the recorder is armed with an output path -- via armFlightRecorder()
 * (the --postmortem-out flag) or the SOCFLOW_POSTMORTEM environment
 * variable (used by run_all.sh --chaos-nightly).
 */

#ifndef SOCFLOW_OBS_FLIGHT_RECORDER_HH
#define SOCFLOW_OBS_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hh"

namespace socflow {
namespace obs {

class FlightRecorder
{
  public:
    /** @param capacity spans retained (the ring is pre-allocated). */
    explicit FlightRecorder(std::size_t capacity = 256);

    /** Enable recording and set the post-mortem output path. */
    void arm(std::string path);

    /** Stop recording and drop the buffered spans. */
    void disarm();

    /** True when armed (record()/dumpPostMortem() are live). */
    bool armed() const
    {
        return isArmed.load(std::memory_order_relaxed);
    }

    /** The post-mortem path ("" when disarmed). */
    std::string path() const;

    /** Keep one event (overwrites the oldest once full). No-op when
     *  disarmed, so the call is safe on hot paths. */
    void record(const TraceEvent &e);

    /** Spans currently held, oldest first (at most capacity()). */
    std::vector<TraceEvent> lastSpans() const;

    /** Spans currently held. */
    std::size_t spanCount() const;

    /** Ring capacity. */
    std::size_t capacity() const;

    /**
     * Resize the ring to hold `capacity` spans (clamped to >= 1).
     * Buffered spans are dropped -- sizing happens at startup, before
     * anything interesting was recorded. Exposed as the
     * --postmortem-spans flag and the SOCFLOW_POSTMORTEM_SPANS
     * environment variable.
     */
    void setCapacity(std::size_t capacity);

    /**
     * Write the post-mortem JSON to the armed path: failure reason,
     * the fault-timeline hash (16 hex digits), the last-N spans, and
     * a snapshot of the process metrics registry. Repeated dumps
     * overwrite (the file reflects the most recent failure).
     * @return false when disarmed or on I/O failure.
     */
    bool dumpPostMortem(std::string_view reason,
                        std::uint64_t timeline_hash);

    /** Post-mortems written so far. */
    std::size_t dumpsWritten() const
    {
        return dumps.load(std::memory_order_relaxed);
    }

  private:
    std::size_t cap;
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;  //!< pre-allocated, size == cap
    std::size_t next = 0;          //!< slot the next event overwrites
    std::size_t held = 0;          //!< events recorded, capped at cap
    std::string outPath;
    std::atomic<bool> isArmed{false};
    std::atomic<std::size_t> dumps{0};
};

/**
 * The process-wide flight recorder. On first use it arms itself from
 * the SOCFLOW_POSTMORTEM environment variable (when set) and attaches
 * to the process tracer so every recorded event reaches the ring.
 */
FlightRecorder &flightRecorder();

/** Arm the process recorder and attach it to the process tracer. */
void armFlightRecorder(std::string path);

} // namespace obs
} // namespace socflow

#endif // SOCFLOW_OBS_FLIGHT_RECORDER_HH
