/**
 * @file
 * Periodic metric snapshots as a newline-delimited JSON time series.
 *
 * A single end-of-run metrics scrape collapses a 24-hour harvested
 * day into one point -- no way to see the p99 of sync latency rise as
 * demand returns, or recovery time spike around an injected crash.
 * A MetricSeriesWriter instead appends one JSON object per snapshot
 * (NDJSON: one line per object), each carrying the snapshot time and
 * the full flattened registry state:
 *
 *   {"t":3.5,"seq":7,"series":{"trainer_epochs_total":7, ...}}
 *
 * Histograms and t-digests expand exactly as in the text dump
 * (_count/_sum plus quantile series); non-finite values serialize as
 * null so every line is strict JSON. The harvesting scheduler drives
 * snapshots every --metrics-interval trained epochs.
 */

#ifndef SOCFLOW_OBS_SNAPSHOT_HH
#define SOCFLOW_OBS_SNAPSHOT_HH

#include <cstddef>
#include <fstream>
#include <mutex>
#include <string>

namespace socflow {
namespace obs {

class MetricsRegistry;

class MetricSeriesWriter
{
  public:
    /** Open (truncate) the NDJSON output file. */
    explicit MetricSeriesWriter(std::string path);

    /**
     * Append one snapshot line of `reg` at time `t` (the caller's
     * clock: simulated hours for the harvest scheduler). Thread-safe.
     * @return false on I/O failure.
     */
    bool snapshot(double t, const MetricsRegistry &reg);

    /** Snapshot of the process-wide registry. */
    bool snapshot(double t);

    /** Lines appended so far. */
    std::size_t snapshotsWritten() const;

    /** Output path. */
    const std::string &path() const { return outPath; }

    /** True when the file opened successfully. */
    bool ok() const { return static_cast<bool>(out); }

  private:
    std::string outPath;
    mutable std::mutex mu;
    std::ofstream out;
    std::size_t lines = 0;
};

} // namespace obs
} // namespace socflow

#endif // SOCFLOW_OBS_SNAPSHOT_HH
