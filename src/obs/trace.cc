#include "obs/trace.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/flight_recorder.hh"
#include "obs/stream_sink.hh"
#include "util/logging.hh"

namespace socflow {
namespace obs {

namespace {

double
steadyNowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One wall-clock span opened but not yet closed. */
struct PendingSpan {
    std::string name;
    std::string category;
    int tid = 0;
    double startUs = 0.0;
};

/**
 * Per-thread state for nested wall-clock spans. Spans opened while
 * the tracer is disabled only bump `disabledDepth`, so begin/end stay
 * allocation-free in disabled mode yet remain balanced if tracing is
 * toggled mid-span.
 */
struct ThreadSpanState {
    std::vector<PendingSpan> stack;
    std::size_t disabledDepth = 0;
};

ThreadSpanState &
threadSpans()
{
    static thread_local ThreadSpanState state;
    return state;
}

void
appendNumber(std::string &out, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    out += buf;
}

} // namespace

void
appendJsonEscaped(std::string &out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendTraceEventJson(std::string &out, const TraceEvent &e)
{
    out += "{\"name\":\"";
    appendJsonEscaped(out, e.name);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":";
    out += std::to_string(e.pid);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    if (!e.category.empty()) {
        out += ",\"cat\":\"";
        appendJsonEscaped(out, e.category);
        out += '"';
    }
    if (e.phase != 'M') {
        out += ",\"ts\":";
        appendNumber(out, e.tsUs);
    }
    if (e.phase == 'X') {
        out += ",\"dur\":";
        appendNumber(out, e.durUs);
    }
    if (e.phase == 'i')
        out += ",\"s\":\"t\"";
    if (!e.args.empty()) {
        out += ",\"args\":{";
        for (std::size_t i = 0; i < e.args.size(); ++i) {
            if (i)
                out += ',';
            out += '"';
            appendJsonEscaped(out, e.args[i].first);
            out += "\":\"";
            appendJsonEscaped(out, e.args[i].second);
            out += '"';
        }
        out += '}';
    }
    out += '}';
}

Tracer::Tracer() : anchorUs(steadyNowUs()) {}

double
Tracer::nowUs() const
{
    return steadyNowUs() - anchorUs;
}

void
Tracer::setEnabled(bool enable)
{
    on.store(enable, std::memory_order_relaxed);
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    events.clear();
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return events.size();
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return events;
}

void
Tracer::push(TraceEvent e)
{
    if (FlightRecorder *rec = recorder.load(std::memory_order_relaxed))
        rec->record(e);
    if (!on.load(std::memory_order_relaxed))
        return;  // only the flight recorder wanted this event
    if (StreamingTraceSink *sink =
            streamSink.load(std::memory_order_relaxed)) {
        sink->offer(std::move(e));
        return;
    }
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(std::move(e));
}

void
Tracer::setProcessName(int pid, std::string_view name)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = "process_name";
    e.phase = 'M';
    e.pid = pid;
    e.tid = 0;
    e.args.emplace_back("name", std::string(name));
    push(std::move(e));
}

void
Tracer::setTrackName(int pid, int tid, std::string_view name)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = "thread_name";
    e.phase = 'M';
    e.pid = pid;
    e.tid = tid;
    e.args.emplace_back("name", std::string(name));
    push(std::move(e));
}

void
Tracer::recordSpan(std::string_view name, std::string_view category,
                   int tid, double start_s, double dur_s,
                   std::initializer_list<SpanArg> args)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = std::string(name);
    e.category = std::string(category);
    e.phase = 'X';
    e.pid = kPidSim;
    e.tid = tid;
    e.tsUs = start_s * 1e6;
    e.durUs = dur_s * 1e6;
    for (const SpanArg &a : args) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.9g", a.value);
        e.args.emplace_back(std::string(a.key), buf);
    }
    push(std::move(e));
}

void
Tracer::recordInstant(std::string_view name, std::string_view category,
                      int tid, double ts_s)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = std::string(name);
    e.category = std::string(category);
    e.phase = 'i';
    e.pid = kPidSim;
    e.tid = tid;
    e.tsUs = ts_s * 1e6;
    push(std::move(e));
}

void
Tracer::beginSpan(std::string_view name, std::string_view category,
                  int tid)
{
    ThreadSpanState &state = threadSpans();
    if (!enabled()) {
        ++state.disabledDepth;
        return;
    }
    PendingSpan span;
    span.name = std::string(name);
    span.category = std::string(category);
    span.tid = tid;
    span.startUs = nowUs();
    state.stack.push_back(std::move(span));
}

void
Tracer::endSpan()
{
    ThreadSpanState &state = threadSpans();
    if (state.disabledDepth > 0) {
        --state.disabledDepth;
        return;
    }
    SOCFLOW_ASSERT(!state.stack.empty(),
                   "endSpan without a matching beginSpan");
    PendingSpan span = std::move(state.stack.back());
    state.stack.pop_back();
    if (!enabled())
        return;  // disabled mid-span: drop silently
    TraceEvent e;
    e.name = std::move(span.name);
    e.category = std::move(span.category);
    e.phase = 'X';
    e.pid = kPidHost;
    e.tid = span.tid;
    e.tsUs = span.startUs;
    e.durUs = nowUs() - span.startUs;
    push(std::move(e));
}

std::size_t
Tracer::openSpanDepth() const
{
    const ThreadSpanState &state = threadSpans();
    return state.stack.size() + state.disabledDepth;
}

std::string
Tracer::chromeTraceJson() const
{
    const std::vector<TraceEvent> snap = snapshot();
    std::string out;
    out.reserve(snap.size() * 96 + 64);
    out += "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &e : snap) {
        if (!first)
            out += ',';
        first = false;
        appendTraceEventJson(out, e);
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

bool
Tracer::writeChromeTrace(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << chromeTraceJson();
    return static_cast<bool>(out);
}

Tracer &
tracer()
{
    // Leaked on purpose; see obs::metrics().
    static Tracer *global = new Tracer();
    return *global;
}

} // namespace obs
} // namespace socflow
