#include "obs/stream_sink.hh"

#include <chrono>
#include <utility>

#include "util/logging.hh"

namespace socflow {
namespace obs {

StreamingTraceSink::StreamingTraceSink(StreamSinkConfig config)
    : cfg(std::move(config))
{
    SOCFLOW_ASSERT(!cfg.path.empty(), "stream sink needs a path");
    SOCFLOW_ASSERT(cfg.ringCapacity > 0, "ring capacity must be > 0");
    cfg.rotateBytes = std::max<std::size_t>(cfg.rotateBytes, 1024);
    ring.resize(cfg.ringCapacity);
    flusher = std::thread([this] { flusherMain(); });
}

StreamingTraceSink::~StreamingTraceSink()
{
    close();
}

std::string
StreamingTraceSink::segmentPath(const std::string &base,
                                std::size_t index)
{
    const std::size_t slash = base.find_last_of('/');
    const std::size_t dot = base.find_last_of('.');
    std::string suffix(1, '.');
    suffix += std::to_string(index);
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return base + suffix;  // no extension: trace -> trace.0
    }
    return base.substr(0, dot) + suffix + base.substr(dot);
}

void
StreamingTraceSink::offer(TraceEvent e)
{
    std::unique_lock<std::mutex> lock(mu);
    while (pending == cfg.ringCapacity && !closing)
        notFull.wait(lock);
    if (closing) {
        dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    ring[(head + pending) % cfg.ringCapacity] = std::move(e);
    ++pending;
    notEmpty.notify_one();
}

void
StreamingTraceSink::close()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (closing && joined)
            return;
        closing = true;
        notEmpty.notify_all();
        notFull.notify_all();
    }
    if (flusher.joinable())
        flusher.join();
    joined = true;
}

void
StreamingTraceSink::flusherMain()
{
    std::vector<TraceEvent> batch;
    batch.reserve(cfg.ringCapacity);
    for (;;) {
        bool done = false;
        {
            std::unique_lock<std::mutex> lock(mu);
            if (pending == 0 && !closing) {
                notEmpty.wait_for(
                    lock,
                    std::chrono::milliseconds(cfg.flushIntervalMs));
            }
            while (pending > 0) {
                batch.push_back(std::move(ring[head]));
                head = (head + 1) % cfg.ringCapacity;
                --pending;
            }
            done = closing && pending == 0;
            notFull.notify_all();
        }
        if (!batch.empty()) {
            writeBatch(batch);
            batch.clear();
        }
        if (done)
            break;
    }
    closeSegment();
}

void
StreamingTraceSink::openSegment()
{
    const std::string path = segmentPath(cfg.path, segmentIndex);
    out = std::fopen(path.c_str(), "w");
    if (!out) {
        warn("stream sink: cannot open ", path, "; events discarded");
        return;
    }
    static constexpr char header[] = "{\"traceEvents\":[";
    std::fwrite(header, 1, sizeof(header) - 1, out);
    segmentBytes = sizeof(header) - 1;
    segmentHasEvents = false;
}

void
StreamingTraceSink::closeSegment()
{
    if (!out)
        return;
    static constexpr char footer[] = "],\"displayTimeUnit\":\"ms\"}";
    std::fwrite(footer, 1, sizeof(footer) - 1, out);
    std::fclose(out);
    out = nullptr;
    ++segmentIndex;
    segmentsDone.fetch_add(1, std::memory_order_relaxed);
}

void
StreamingTraceSink::writeBatch(const std::vector<TraceEvent> &batch)
{
    std::string buf;
    for (const TraceEvent &e : batch) {
        if (!out)
            openSegment();
        if (!out) {
            dropped.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        buf.clear();
        if (segmentHasEvents)
            buf += ',';
        appendTraceEventJson(buf, e);
        std::fwrite(buf.data(), 1, buf.size(), out);
        segmentBytes += buf.size();
        segmentHasEvents = true;
        written.fetch_add(1, std::memory_order_relaxed);
        if (segmentBytes >= cfg.rotateBytes)
            closeSegment();  // the next event opens the next segment
    }
    if (out)
        std::fflush(out);
}

} // namespace obs
} // namespace socflow
