#include "obs/tdigest.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace socflow {
namespace obs {

TDigest::TDigest(double compression)
    : comp(compression),
      bufferLimit(std::max<std::size_t>(
          32, static_cast<std::size_t>(5.0 * compression))),
      lo(std::numeric_limits<double>::infinity()),
      hi(-std::numeric_limits<double>::infinity())
{
    SOCFLOW_ASSERT(compression >= 10.0,
                   "t-digest compression must be >= 10");
    cents.reserve(bufferLimit);
    buffer.reserve(bufferLimit);
}

void
TDigest::observe(double x, double w)
{
    if (!(w > 0.0) || std::isnan(x))
        return;
    std::lock_guard<std::mutex> lock(mu);
    buffer.push_back({x, w});
    ++n;
    total += w;
    weightedSum += x * w;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    if (buffer.size() >= bufferLimit)
        compressLocked();
}

void
TDigest::merge(const TDigest &other)
{
    // Copy the source under its own lock first so self-merge and
    // opposite-order merges cannot deadlock.
    const std::vector<Centroid> theirs = other.centroids();
    std::uint64_t theirN;
    double theirTotal, theirSum, theirLo, theirHi;
    {
        std::lock_guard<std::mutex> lock(other.mu);
        theirN = other.n;
        theirTotal = other.total;
        theirSum = other.weightedSum;
        theirLo = other.lo;
        theirHi = other.hi;
    }
    std::lock_guard<std::mutex> lock(mu);
    for (const Centroid &c : theirs)
        buffer.push_back(c);
    n += theirN;
    total += theirTotal;
    weightedSum += theirSum;
    lo = std::min(lo, theirLo);
    hi = std::max(hi, theirHi);
    compressLocked();
}

void
TDigest::compressLocked() const
{
    if (buffer.empty())
        return;
    cents.insert(cents.end(), buffer.begin(), buffer.end());
    buffer.clear();
    if (cents.empty())
        return;
    std::sort(cents.begin(), cents.end(),
              [](const Centroid &a, const Centroid &b) {
                  return a.mean < b.mean;
              });

    // One merge sweep under the k1 (arcsine) scale function: two
    // neighbours may fuse while the merged centroid spans at most one
    // unit of k(q) = (delta/2pi) * asin(2q-1). k changes fastest at
    // the ends, so tail centroids stay tiny (fine p99/p99.9) and the
    // total count is bounded near delta regardless of stream length.
    constexpr double kPi = 3.14159265358979323846;
    const double kScale = comp / (2.0 * kPi);
    const auto kOf = [&](double q) {
        return kScale * std::asin(std::clamp(2.0 * q - 1.0, -1.0, 1.0));
    };
    std::vector<Centroid> merged;
    merged.reserve(cents.size());
    Centroid cur = cents.front();
    double before = 0.0;  // weight fully to the left of `cur`
    double kLeft = kOf(0.0);
    for (std::size_t i = 1; i < cents.size(); ++i) {
        const Centroid &c = cents[i];
        const double proposed = cur.weight + c.weight;
        const double qRight = (before + proposed) / total;
        if (kOf(qRight) - kLeft <= 1.0) {
            cur.mean += (c.mean - cur.mean) * (c.weight / proposed);
            cur.weight = proposed;
        } else {
            merged.push_back(cur);
            before += cur.weight;
            kLeft = kOf(before / total);
            cur = c;
        }
    }
    merged.push_back(cur);
    cents.swap(merged);
}

double
TDigest::quantile(double q) const
{
    std::lock_guard<std::mutex> lock(mu);
    compressLocked();
    if (n == 0)
        return std::numeric_limits<double>::quiet_NaN();
    if (q <= 0.0)
        return lo;
    if (q >= 1.0)
        return hi;

    const double target = q * total;
    double cumBefore = 0.0;  // weight left of the current centroid
    for (std::size_t i = 0; i < cents.size(); ++i) {
        const double mid = cumBefore + cents[i].weight * 0.5;
        if (target <= mid) {
            if (i == 0) {
                // Between the observed minimum and the first mean.
                const double frac = mid > 0.0 ? target / mid : 0.0;
                return lo + (cents[0].mean - lo) * frac;
            }
            const double prevMid = cumBefore - cents[i - 1].weight * 0.5;
            const double span = mid - prevMid;
            const double frac =
                span > 0.0 ? (target - prevMid) / span : 0.0;
            return cents[i - 1].mean +
                   (cents[i].mean - cents[i - 1].mean) * frac;
        }
        cumBefore += cents[i].weight;
    }
    // Past the last mean: interpolate toward the observed maximum.
    const double lastMid = total - cents.back().weight * 0.5;
    const double span = total - lastMid;
    const double frac =
        span > 0.0 ? std::min(1.0, (target - lastMid) / span) : 1.0;
    return cents.back().mean + (hi - cents.back().mean) * frac;
}

std::uint64_t
TDigest::count() const
{
    std::lock_guard<std::mutex> lock(mu);
    return n;
}

double
TDigest::totalWeight() const
{
    std::lock_guard<std::mutex> lock(mu);
    return total;
}

double
TDigest::sum() const
{
    std::lock_guard<std::mutex> lock(mu);
    return weightedSum;
}

double
TDigest::minSeen() const
{
    std::lock_guard<std::mutex> lock(mu);
    return n ? lo : 0.0;
}

double
TDigest::maxSeen() const
{
    std::lock_guard<std::mutex> lock(mu);
    return n ? hi : 0.0;
}

std::size_t
TDigest::centroidCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    compressLocked();
    return cents.size();
}

void
TDigest::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    cents.clear();
    buffer.clear();
    n = 0;
    total = 0.0;
    weightedSum = 0.0;
    lo = std::numeric_limits<double>::infinity();
    hi = -std::numeric_limits<double>::infinity();
}

std::vector<Centroid>
TDigest::centroids() const
{
    std::lock_guard<std::mutex> lock(mu);
    compressLocked();
    return cents;
}

} // namespace obs
} // namespace socflow
