/**
 * @file
 * Lock-cheap metrics registry: counters, gauges, histograms, and
 * t-digest sketches with label sets, in the spirit of a Prometheus
 * client.
 *
 * Registration (name + labels -> instrument) takes a mutex and is
 * expected on cold paths only; callers cache the returned reference.
 * Counter::add, Gauge::set and Histogram::observe are lock-free
 * atomic updates, safe to call from any thread on hot paths;
 * TDigest::observe takes a short buffered critical section.
 * Instruments are never destroyed while the registry lives, so cached
 * references stay valid across reset().
 *
 * The registry exports a plain-text dump (one `name{labels} value`
 * line per series) for offline inspection and diffing; the span-level
 * timeline lives in obs/trace.hh.
 */

#ifndef SOCFLOW_OBS_METRICS_HH
#define SOCFLOW_OBS_METRICS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/tdigest.hh"

namespace socflow {
namespace obs {

/** Label set attached to one metric series, e.g. {{"method","RING"}}. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotonically increasing value (events, bytes, rounds). */
class Counter
{
  public:
    /** Atomically add `v` (must be >= 0 to stay monotone). */
    void add(double v = 1.0) noexcept;

    /** Current value. */
    double value() const noexcept
    {
        return val.load(std::memory_order_relaxed);
    }

    /** Zero the counter (registry reset; instrument stays valid). */
    void reset() noexcept { val.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> val{0.0};
};

/** Last-written value (alpha, active groups, test accuracy). */
class Gauge
{
  public:
    /** Atomically overwrite the value. */
    void set(double v) noexcept
    {
        val.store(v, std::memory_order_relaxed);
    }

    /** Current value. */
    double value() const noexcept
    {
        return val.load(std::memory_order_relaxed);
    }

    /** Zero the gauge (registry reset; instrument stays valid). */
    void reset() noexcept { val.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> val{0.0};
};

/**
 * Fixed-bucket histogram with count/sum/min/max and interpolated
 * percentile queries. Buckets are defined by sorted upper bounds; an
 * implicit overflow bucket catches everything above the last bound.
 */
class Histogram
{
  public:
    /** @param upper_bounds strictly increasing bucket upper bounds. */
    explicit Histogram(std::vector<double> upper_bounds);

    /** Record one sample (lock-free). */
    void observe(double v) noexcept;

    /** Number of samples recorded. */
    std::uint64_t count() const noexcept
    {
        return n.load(std::memory_order_relaxed);
    }

    /** Sum of all samples. */
    double sum() const noexcept
    {
        return total.load(std::memory_order_relaxed);
    }

    /** Smallest sample seen; 0 when empty. */
    double minSeen() const noexcept;

    /** Largest sample seen; 0 when empty. */
    double maxSeen() const noexcept;

    /**
     * Estimated percentile by nearest-rank over the buckets with
     * linear interpolation inside the bucket, clamped to the observed
     * min/max. @param p in [0, 100]; p <= 0 returns the observed
     * minimum and p >= 100 the maximum. Returns NaN when empty.
     */
    double percentile(double p) const;

    /** Configured upper bounds (without the overflow bucket). */
    const std::vector<double> &bounds() const { return ub; }

    /** Per-bucket counts, including the final overflow bucket. */
    std::vector<std::uint64_t> bucketCounts() const;

    /** Zero all state (registry reset; instrument stays valid). */
    void reset() noexcept;

    /**
     * `per_decade` log-spaced bounds per power of ten covering
     * [lo, hi] -- the default shape for latency distributions.
     */
    static std::vector<double> exponentialBounds(double lo, double hi,
                                                 std::size_t per_decade);

  private:
    std::vector<double> ub;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> n{0};
    std::atomic<double> total{0.0};
    std::atomic<double> lo;
    std::atomic<double> hi;
};

/**
 * Owns every instrument. One process-wide instance is available via
 * metrics(); independent registries can be created for tests.
 */
class MetricsRegistry
{
  public:
    /**
     * Find or create a series. Requesting an existing name with a
     * different instrument type is an internal error (panic).
     */
    Counter &counter(std::string_view name, const Labels &labels = {});
    Gauge &gauge(std::string_view name, const Labels &labels = {});

    /**
     * @param upper_bounds bucket bounds for a newly created series;
     *        ignored when the series already exists. Empty selects
     *        the default exponential 1 us .. 1000 s layout.
     */
    Histogram &histogram(std::string_view name,
                         const Labels &labels = {},
                         std::vector<double> upper_bounds = {});

    /**
     * @param compression delta for a newly created sketch; ignored
     *        when the series already exists.
     */
    TDigest &tdigest(std::string_view name, const Labels &labels = {},
                     double compression = 100.0);

    /** Number of registered series across all instrument types. */
    std::size_t seriesCount() const;

    /**
     * Plain-text dump, one line per series in sorted order:
     *   name{k="v",...} value
     * Histograms expand to _count/_sum plus p50/p95/p99 quantile
     * series; t-digests add a p99.9 series (their tail resolution is
     * the point).
     */
    std::string textDump() const;

    /**
     * Flattened (series key, value) pairs in dump order, expanding
     * histograms and digests exactly like textDump(). Quantiles of
     * empty instruments are NaN -- serializers map them to null.
     */
    std::vector<std::pair<std::string, double>> snapshotValues() const;

    /** Write textDump() to a file; false on I/O failure. */
    bool writeTextDump(const std::string &path) const;

    /**
     * Zero every instrument. References handed out earlier remain
     * valid (instruments are reset in place, never destroyed).
     */
    void reset();

  private:
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::map<std::string, std::unique_ptr<TDigest>> digests;
};

/** The process-wide registry used by the instrumented subsystems. */
MetricsRegistry &metrics();

} // namespace obs
} // namespace socflow

#endif // SOCFLOW_OBS_METRICS_HH
