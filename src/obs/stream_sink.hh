/**
 * @file
 * Streaming Chrome-trace export with size-based file rotation.
 *
 * The Tracer's default path buffers every event in memory and writes
 * one JSON document at exit -- fine for a bench, unusable for a
 * multi-hour harvested day. A StreamingTraceSink instead holds a
 * *bounded* ring of pending events; a background flusher thread
 * drains the ring and appends each event to the current trace
 * segment, closing the segment and opening the next one whenever it
 * grows past the rotation limit. Peak memory is the ring capacity,
 * not the event count.
 *
 * Every segment is a complete, independently valid Chrome
 * trace_event document ({"traceEvents":[...]}), so each loads on its
 * own in chrome://tracing / Perfetto and the union of all segments is
 * the full timeline. Producers block briefly (backpressure) when the
 * ring is full rather than dropping events; only events offered
 * after close() are dropped, and those are counted.
 *
 * Attach to a Tracer with Tracer::setStreamSink(); detach (and
 * close()) before destroying the sink.
 */

#ifndef SOCFLOW_OBS_STREAM_SINK_HH
#define SOCFLOW_OBS_STREAM_SINK_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hh"

namespace socflow {
namespace obs {

/** Knobs of one streaming sink. */
struct StreamSinkConfig {
    /** Base output path; segment k is written to segmentPath(path,k)
     *  (an index inserted before the extension: trace.json ->
     *  trace.0.json, trace.1.json, ...). */
    std::string path;
    /** Rotate to the next segment once the current one exceeds this
     *  many bytes (checked after each event). */
    std::size_t rotateBytes = 64ull << 20;
    /** Pending-event ring capacity (the peak-memory bound). */
    std::size_t ringCapacity = 4096;
    /** Flusher wake-up period when no events arrive, milliseconds. */
    int flushIntervalMs = 20;
};

class StreamingTraceSink
{
  public:
    explicit StreamingTraceSink(StreamSinkConfig config);

    /** Closes (drains + joins the flusher) if not already closed. */
    ~StreamingTraceSink();

    StreamingTraceSink(const StreamingTraceSink &) = delete;
    StreamingTraceSink &operator=(const StreamingTraceSink &) = delete;

    /**
     * Hand one event to the ring. Blocks while the ring is full and
     * the sink is open (bounded-memory backpressure; the flusher is
     * draining meanwhile). Events offered after close() are dropped
     * and counted in eventsDropped().
     */
    void offer(TraceEvent e);

    /**
     * Drain every pending event, close the open segment, and join
     * the flusher thread. Idempotent; called by the destructor.
     * Sanitizer-friendly: no event or thread outlives this call.
     */
    void close();

    /** Segments fully written (the open one counts once closed). */
    std::size_t segmentsWritten() const
    {
        return segmentsDone.load(std::memory_order_relaxed);
    }

    /** Events serialized to disk so far. */
    std::size_t eventsWritten() const
    {
        return written.load(std::memory_order_relaxed);
    }

    /** Events dropped (only possible after close()). */
    std::size_t eventsDropped() const
    {
        return dropped.load(std::memory_order_relaxed);
    }

    /** The configured ring capacity (peak pending-event bound). */
    std::size_t ringCapacity() const { return cfg.ringCapacity; }

    /** Path of segment `index` under base path `base`. */
    static std::string segmentPath(const std::string &base,
                                   std::size_t index);

  private:
    void flusherMain();
    void writeBatch(const std::vector<TraceEvent> &batch);
    void openSegment();
    void closeSegment();

    StreamSinkConfig cfg;

    std::mutex mu;
    std::condition_variable notFull;
    std::condition_variable notEmpty;
    std::vector<TraceEvent> ring;  //!< fixed-capacity FIFO
    std::size_t head = 0;          //!< oldest pending event
    std::size_t pending = 0;       //!< events in the ring
    bool closing = false;

    // Flusher-thread-only state (no locking needed).
    std::FILE *out = nullptr;
    std::size_t segmentIndex = 0;
    std::size_t segmentBytes = 0;
    bool segmentHasEvents = false;

    std::atomic<std::size_t> segmentsDone{0};
    std::atomic<std::size_t> written{0};
    std::atomic<std::size_t> dropped{0};

    std::thread flusher;
    bool joined = false;
};

} // namespace obs
} // namespace socflow

#endif // SOCFLOW_OBS_STREAM_SINK_HH
