/**
 * @file
 * Deterministic fault injection for harvested training.
 *
 * Co-located SoC-Clusters do not fail politely: user demand reclaims
 * a SoC mid-AllReduce (crash, no checkpoint), gaming traffic degrades
 * a board's shared NIC, thermal throttling turns a SoC into a
 * straggler, and checkpoint writes to the control plane fail. This
 * module schedules those events ahead of time -- a FaultPlan is a
 * sorted list of FaultSpecs, either hand-written or generated
 * deterministically from a seed -- and a FaultInjector replays the
 * plan against the training epoch counter, exposing the resulting
 * cluster state (dead SoCs, degraded links, slow SoCs, pending
 * checkpoint-write failures) to the collective engine, the trainer,
 * and the harvesting scheduler through the FaultModel interface.
 *
 * Everything is epoch-driven and seed-deterministic so a faulted run
 * is exactly reproducible; see DESIGN.md "Failure model" for which
 * faults are survivable and what state each recovery path preserves.
 */

#ifndef SOCFLOW_FAULT_FAULT_HH
#define SOCFLOW_FAULT_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "sim/cluster.hh"

namespace socflow {
namespace fault {

/** The failure classes the injector can fire. */
enum class FaultKind {
    SocCrash,        //!< abrupt SoC loss, no checkpoint
    LinkDegrade,     //!< board NIC bandwidth multiplier for a window
    Straggler,       //!< SoC compute-rate multiplier for a window
    CheckpointFail,  //!< the next N checkpoint writes fail
};

/** Printable fault-kind name. */
const char *faultKindName(FaultKind k);

/** One scheduled fault. */
struct FaultSpec {
    FaultKind kind = FaultKind::SocCrash;
    /** Fires when training reaches this epoch (before its steps). */
    std::size_t epoch = 0;
    /** Target SoC (SocCrash, Straggler). */
    sim::SocId soc = 0;
    /** Target board (LinkDegrade). */
    sim::BoardId board = 0;
    /** Rate multiplier in (0, 1] (LinkDegrade, Straggler). */
    double factor = 1.0;
    /** Window length in epochs (LinkDegrade, Straggler). */
    std::size_t durationEpochs = 1;
    /** Consecutive failed writes (CheckpointFail). */
    std::size_t count = 1;
};

/** Knobs for the seed-driven plan generator. */
struct FaultPlanConfig {
    std::size_t horizonEpochs = 48;  //!< faults land in [1, horizon)
    std::size_t numSocs = 32;
    std::size_t socsPerBoard = 5;
    std::size_t crashes = 1;
    std::size_t linkDegrades = 1;
    std::size_t stragglers = 1;
    std::size_t checkpointFailures = 1;
    double linkFactor = 0.25;       //!< degraded NIC bandwidth share
    double stragglerFactor = 0.5;   //!< slowed SoC compute share
    std::size_t windowEpochs = 4;   //!< degrade/straggle window
    std::size_t checkpointFailBurst = 2;  //!< failed writes per event
    std::uint64_t seed = 2024;
};

/**
 * An ordered fault schedule. Deterministic: the same config and seed
 * always produce the same plan.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Generate a plan from the config's seed (reproducible). */
    static FaultPlan random(const FaultPlanConfig &cfg);

    /** Insert one spec, keeping the epoch ordering. */
    void add(const FaultSpec &spec);

    /** All specs, sorted by firing epoch (stable). */
    const std::vector<FaultSpec> &specs() const { return ordered; }

    /** Number of scheduled specs of one kind. */
    std::size_t countKind(FaultKind k) const;

  private:
    std::vector<FaultSpec> ordered;
};

/**
 * Read-side view of the injected cluster state, consulted on hot
 * paths by the collective engine and the trainer.
 */
class FaultModel
{
  public:
    virtual ~FaultModel() = default;

    /** False once the SoC has crashed. */
    virtual bool socAlive(sim::SocId soc) const = 0;

    /** Compute-rate multiplier in (0, 1]; 1 = healthy. */
    virtual double computeFactor(sim::SocId soc) const = 0;

    /** Board-NIC bandwidth multiplier in (0, 1]; 1 = healthy. */
    virtual double linkFactor(sim::BoardId board) const = 0;
};

/**
 * Replays a FaultPlan against the epoch counter and answers state
 * queries. advanceTo() is called once per epoch by the trainer; the
 * query side is cheap enough for per-step use.
 */
class FaultInjector : public FaultModel
{
  public:
    explicit FaultInjector(FaultPlan plan_in = {});

    /**
     * Fire every not-yet-fired spec with epoch <= `epoch` and expire
     * stale windows. Returns the newly fired specs in plan order.
     */
    std::vector<FaultSpec> advanceTo(std::size_t epoch);

    bool socAlive(sim::SocId soc) const override;
    double computeFactor(sim::SocId soc) const override;
    double linkFactor(sim::BoardId board) const override;

    /**
     * Consume one pending checkpoint-write failure. Returns true when
     * the write the caller is about to do fails (the caller should
     * retry with backoff, which consumes further failures).
     */
    bool checkpointWriteFails();

    /** Failures still queued for future checkpoint writes. */
    std::size_t pendingCheckpointFailures() const
    {
        return ckptFailBudget;
    }

    /** SoCs crashed so far, in firing order. */
    const std::vector<sim::SocId> &crashedSocs() const
    {
        return crashed;
    }

    /** Specs fired so far. */
    std::size_t firedCount() const { return nextSpec; }

    /** The plan being replayed. */
    const FaultPlan &plan() const { return schedule; }

  private:
    /** A time-bounded rate-multiplier window. */
    struct Window {
        std::size_t untilEpoch = 0;  //!< active while epoch < until
        double factor = 1.0;
    };

    FaultPlan schedule;
    std::size_t nextSpec = 0;
    std::size_t epochNow = 0;
    std::set<sim::SocId> dead;
    std::vector<sim::SocId> crashed;
    std::multimap<sim::SocId, Window> slow;
    std::multimap<sim::BoardId, Window> degraded;
    std::size_t ckptFailBudget = 0;
};

} // namespace fault
} // namespace socflow

#endif // SOCFLOW_FAULT_FAULT_HH
