/**
 * @file
 * Deterministic fault injection for harvested training.
 *
 * Co-located SoC-Clusters do not fail politely: user demand reclaims
 * a SoC mid-AllReduce (crash, no checkpoint), gaming traffic degrades
 * a board's shared NIC, thermal throttling turns a SoC into a
 * straggler, and checkpoint writes to the control plane fail. This
 * module schedules those events ahead of time -- a FaultPlan is a
 * sorted list of FaultSpecs, either hand-written or generated
 * deterministically from a seed -- and a FaultInjector replays the
 * plan against the training clock, exposing the resulting cluster
 * state (dead SoCs, degraded links, slow SoCs, pending checkpoint or
 * gradient-chunk corruption) to the collective engine, the trainer,
 * and the harvesting scheduler through the FaultModel interface.
 *
 * The clock is *step- and phase-granular*: a FaultPoint is
 * {epoch, step, phase} with phase running through the sub-step
 * timeline compute -> wave1 -> wave2 -> leaderRing -> checkpoint, so
 * a fault can land exactly where it hurts -- inside a CG-planned
 * communication wave holding partially-reduced chunks
 * (SocCrashMidWave), on a ring segment in flight (GradCorrupt), or
 * on a group leader during the cross-group delayed-aggregation ring
 * (LeaderCrash). Epoch-granular specs are the special case
 * {epoch, 0, Compute}, and the epoch-only advanceTo() overload is
 * kept for callers that do not track steps.
 *
 * Everything is seed-deterministic so a faulted run is exactly
 * reproducible (same seed => identical recovery timeline hash); see
 * DESIGN.md "Failure model" for which faults are survivable and what
 * state each recovery path preserves.
 */

#ifndef SOCFLOW_FAULT_FAULT_HH
#define SOCFLOW_FAULT_FAULT_HH

#include <compare>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "sim/cluster.hh"

namespace socflow {
namespace fault {

/** The failure classes the injector can fire. */
enum class FaultKind {
    SocCrash,        //!< abrupt SoC loss, no checkpoint
    LinkDegrade,     //!< board NIC bandwidth multiplier for a window
    Straggler,       //!< SoC compute-rate multiplier for a window
    CheckpointFail,  //!< the next N checkpoint writes fail
    SocCrashMidWave, //!< ring member dies holding a partial chunk
    GradCorrupt,     //!< gradient chunks arrive bit-flipped/truncated
    LeaderCrash,     //!< group leader dies in the cross-group ring
    BoardPartition,  //!< one board's uplink cut: 5 SoCs unreachable
    SwitchPartition, //!< `count` adjacent boards cut (ToR port/cable)
    SocRejoin,       //!< a crashed SoC comes back and asks to rejoin
    PsServerCrash,   //!< a parameter-server shard host dies
    RackPowerLoss,   //!< whole rack (or fleet) loses power mid-epoch
    CkptReplicaLoss, //!< durable checkpoint replicas destroyed
};

/** Printable fault-kind name. */
const char *faultKindName(FaultKind k);

/**
 * Sub-step phases of the training timeline, in execution order.
 * Wave1/Wave2 are the CG-planned communication waves of one step
 * (plans that degenerate to a single wave treat Wave2 as a no-op
 * point); LeaderRing is the per-epoch cross-group delayed
 * aggregation; Checkpoint closes the epoch.
 */
enum class FaultPhase : std::uint8_t {
    Compute = 0,
    Wave1,
    Wave2,
    LeaderRing,
    Checkpoint,
};

/** Printable phase name. */
const char *faultPhaseName(FaultPhase p);

/**
 * One instant of the step/phase training clock. Ordered
 * lexicographically: epoch, then step within the epoch, then phase
 * within the step.
 */
struct FaultPoint {
    std::size_t epoch = 0;
    std::size_t step = 0;
    FaultPhase phase = FaultPhase::Compute;

    auto operator<=>(const FaultPoint &) const = default;

    /** The latest point inside `epoch` (its checkpoint phase). */
    static FaultPoint
    epochEnd(std::size_t epoch)
    {
        return {epoch, std::numeric_limits<std::size_t>::max(),
                FaultPhase::Checkpoint};
    }
};

/** One scheduled fault. */
struct FaultSpec {
    FaultKind kind = FaultKind::SocCrash;
    /** Fires when training reaches this epoch. */
    std::size_t epoch = 0;
    /** Step within the epoch (0 = epoch start). */
    std::size_t step = 0;
    /** Phase within the step (Compute = classic epoch granularity). */
    FaultPhase phase = FaultPhase::Compute;
    /** Target SoC (crash kinds, Straggler, GradCorrupt ring pick). */
    sim::SocId soc = 0;
    /** Target board (LinkDegrade, BoardPartition, SwitchPartition). */
    sim::BoardId board = 0;
    /** Rate multiplier in (0, 1] (LinkDegrade, Straggler). */
    double factor = 1.0;
    /** Window length in epochs (LinkDegrade, Straggler, partitions). */
    std::size_t durationEpochs = 1;
    /**
     * Failed writes (CheckpointFail) / corrupt chunks (GradCorrupt) /
     * boards cut (SwitchPartition: [board, board + count)).
     */
    std::size_t count = 1;
    /**
     * Fraction of the wave's ring rounds already acked when a
     * SocCrashMidWave fires; the recovery re-reduces only the
     * remaining (1 - progress) share on the survivor ring.
     */
    double progress = 0.5;

    /** The instant this spec fires at. */
    FaultPoint
    point() const
    {
        return {epoch, step, phase};
    }
};

/**
 * A rack cut: the SwitchPartition that severs one whole rack of a
 * fleet (DESIGN.md ch. 10) -- boards [rack * boards_per_rack,
 * (rack + 1) * boards_per_rack) lose their uplink for
 * `duration_epochs`. Handled by the ordinary quorum/park/heal path:
 * the cut rack's groups park, the majority re-maps, and the heal
 * sweep folds the rack back in with its stale traffic fenced.
 */
FaultSpec rackCut(sim::RackId rack, std::size_t boards_per_rack,
                  std::size_t epoch, std::size_t duration_epochs);

/** Knobs for the seed-driven plan generator. */
struct FaultPlanConfig {
    std::size_t horizonEpochs = 48;  //!< faults land in [1, horizon)
    std::size_t stepsPerEpoch = 8;   //!< step horizon for step picks
    std::size_t numSocs = 32;
    std::size_t socsPerBoard = 5;
    std::size_t crashes = 1;
    std::size_t linkDegrades = 1;
    std::size_t stragglers = 1;
    std::size_t checkpointFailures = 1;
    std::size_t midWaveCrashes = 0;  //!< SocCrashMidWave events
    std::size_t gradCorrupts = 0;    //!< GradCorrupt bursts
    std::size_t leaderCrashes = 0;   //!< LeaderCrash events
    std::size_t boardPartitions = 0; //!< BoardPartition windows
    std::size_t switchPartitions = 0; //!< SwitchPartition windows
    std::size_t rejoins = 0;         //!< SocRejoin events
    double linkFactor = 0.25;       //!< degraded NIC bandwidth share
    double stragglerFactor = 0.5;   //!< slowed SoC compute share
    std::size_t windowEpochs = 4;   //!< degrade/straggle window
    std::size_t checkpointFailBurst = 2;  //!< failed writes per event
    std::size_t gradCorruptBurst = 1;     //!< corrupt chunks per event
    std::size_t partitionWindowEpochs = 3; //!< partition heal horizon
    std::size_t switchPartitionBoards = 2; //!< boards per switch cut
    std::size_t rackCuts = 0;       //!< whole-rack cuts (fleet only)
    std::size_t boardsPerRack = 12; //!< rack width used by rackCuts
    /**
     * PsServerCrash events. Targets are drawn from the per-board
     * server SoCs of the sharded parameter server (the first SoC of
     * each of the first min(psShards, boards) boards), so the crash
     * always lands on a shard host. Zero events draw zero random
     * numbers, keeping existing seeded plans byte-identical.
     */
    std::size_t psServerCrashes = 0;
    /** Server-pool width used for PsServerCrash target picks. */
    std::size_t psShards = 8;
    /**
     * RackPowerLoss events: an entire rack (spec.board = rack id)
     * loses power mid-epoch. Volatile training state on the rack
     * dies; durable checkpoint replicas survive the power cycle.
     * When `count` >= the fleet's rack total the loss is fleet-wide
     * and the run can only continue by restoring from a durable
     * checkpoint. Zero events draw zero random numbers, keeping
     * existing seeded plans byte-identical.
     */
    std::size_t rackPowerLosses = 0;
    /** Racks taken down per RackPowerLoss event. */
    std::size_t rackPowerLossRacks = 1;
    /** Rack count used by rackPowerLosses target picks. */
    std::size_t numRacks = 1;
    /**
     * CkptReplicaLoss events: `ckptReplicaLossBurst` durable replica
     * copies are destroyed (disk loss, not power loss). The
     * replicated checkpoint store drains the budget at its next
     * read/write boundary. Zero events draw zero random numbers.
     */
    std::size_t ckptReplicaLosses = 0;
    /** Replica copies destroyed per CkptReplicaLoss event. */
    std::size_t ckptReplicaLossBurst = 1;
    std::uint64_t seed = 2024;
};

/**
 * An ordered fault schedule. Deterministic: the same config and seed
 * always produce the same plan.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Generate a plan from the config's seed (reproducible). */
    static FaultPlan random(const FaultPlanConfig &cfg);

    /** Insert one spec, keeping the firing-point ordering. */
    void add(const FaultSpec &spec);

    /** All specs, sorted by firing point (stable). */
    const std::vector<FaultSpec> &specs() const { return ordered; }

    /** Number of scheduled specs of one kind. */
    std::size_t countKind(FaultKind k) const;

  private:
    std::vector<FaultSpec> ordered;
};

/**
 * Read-side view of the injected cluster state, consulted on hot
 * paths by the collective engine and the trainer.
 */
class FaultModel
{
  public:
    virtual ~FaultModel() = default;

    /** False once the SoC has crashed. */
    virtual bool socAlive(sim::SocId soc) const = 0;

    /** Compute-rate multiplier in (0, 1]; 1 = healthy. */
    virtual double computeFactor(sim::SocId soc) const = 0;

    /** Board-NIC bandwidth multiplier in (0, 1]; 1 = healthy. */
    virtual double linkFactor(sim::BoardId board) const = 0;

    /**
     * False while the board's uplink is cut by an active
     * BoardPartition / SwitchPartition window. An unreachable board's
     * SoCs are alive (state intact, weights preserved) but cannot be
     * heard from -- the membership layer, not the fault layer, decides
     * which side of the cut keeps training.
     */
    virtual bool boardReachable(sim::BoardId) const { return true; }
};

/**
 * Replays a FaultPlan against the training clock and answers state
 * queries. The trainer advances the point clock at every phase
 * boundary (advanceTo(FaultPoint)); epoch-only callers use the
 * advanceTo(epoch) overload, which sweeps through the whole epoch.
 * The query side is cheap enough for per-step use.
 */
class FaultInjector : public FaultModel
{
  public:
    explicit FaultInjector(FaultPlan plan_in = {});

    /**
     * Fire every not-yet-fired spec with point <= `now` and expire
     * rate windows stale at now.epoch. Returns the newly fired specs
     * in plan order. All crash kinds (SocCrash, SocCrashMidWave,
     * LeaderCrash) mark their target dead at fire time; the caller
     * runs the matching recovery path.
     */
    std::vector<FaultSpec> advanceTo(const FaultPoint &now);

    /**
     * Epoch-granular sweep: fire everything scheduled anywhere inside
     * epochs <= `epoch` (equivalent to
     * advanceTo(FaultPoint::epochEnd(epoch))).
     */
    std::vector<FaultSpec> advanceTo(std::size_t epoch);

    bool socAlive(sim::SocId soc) const override;
    double computeFactor(sim::SocId soc) const override;
    double linkFactor(sim::BoardId board) const override;
    bool boardReachable(sim::BoardId board) const override;

    /**
     * Consume one pending checkpoint-write failure. Returns true when
     * the write the caller is about to do fails (the caller should
     * retry with backoff, which consumes further failures).
     */
    bool checkpointWriteFails();

    /** Failures still queued for future checkpoint writes. */
    std::size_t pendingCheckpointFailures() const
    {
        return ckptFailBudget;
    }

    /**
     * Consume one pending gradient-chunk corruption. Returns true
     * when the chunk transfer the caller is about to verify arrives
     * corrupted (CRC mismatch); retransmissions consume further
     * pending corruptions, so a burst longer than the retry budget
     * surfaces as a typed sync failure.
     */
    bool corruptNextChunk();

    /** Drain the whole pending corruption budget (for cost models). */
    std::size_t drainGradCorrupt();

    /** Corrupt chunks still queued. */
    std::size_t pendingGradCorrupt() const { return gradCorruptBudget; }

    /**
     * Drain the pending replica-loss budget (CkptReplicaLoss). The
     * replicated checkpoint store calls this at its read/write
     * boundaries and destroys that many durable replica copies,
     * newest placement first.
     */
    std::size_t drainReplicaLosses();

    /** Replica destructions still queued. */
    std::size_t pendingReplicaLosses() const
    {
        return replicaLossBudget;
    }

    /**
     * SoCs currently down (all crash kinds), in firing order; a
     * SocRejoin removes its target from this list.
     */
    const std::vector<sim::SocId> &crashedSocs() const
    {
        return crashed;
    }

    /** Specs fired so far. */
    std::size_t firedCount() const { return nextSpec; }

    /** The current clock position. */
    const FaultPoint &now() const { return clock; }

    /** The plan being replayed. */
    const FaultPlan &plan() const { return schedule; }

  private:
    /** A time-bounded rate-multiplier window. */
    struct Window {
        std::size_t untilEpoch = 0;  //!< active while epoch < until
        double factor = 1.0;
    };

    FaultPlan schedule;
    std::size_t nextSpec = 0;
    FaultPoint clock;
    std::set<sim::SocId> dead;
    std::vector<sim::SocId> crashed;
    std::multimap<sim::SocId, Window> slow;
    std::multimap<sim::BoardId, Window> degraded;
    std::multimap<sim::BoardId, Window> partitioned;
    std::size_t ckptFailBudget = 0;
    std::size_t gradCorruptBudget = 0;
    std::size_t replicaLossBudget = 0;
};

} // namespace fault
} // namespace socflow

#endif // SOCFLOW_FAULT_FAULT_HH
