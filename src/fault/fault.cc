#include "fault/fault.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace socflow {
namespace fault {

namespace {

/** Injection accounting, one counter per fault kind. */
obs::Counter &
injectedCounter(FaultKind k)
{
    struct Counters {
        obs::Counter &crash;
        obs::Counter &link;
        obs::Counter &straggler;
        obs::Counter &ckpt;
        Counters()
            : crash(obs::metrics().counter("fault_injected_total",
                                           {{"kind", "soc_crash"}})),
              link(obs::metrics().counter("fault_injected_total",
                                          {{"kind", "link_degrade"}})),
              straggler(obs::metrics().counter(
                  "fault_injected_total", {{"kind", "straggler"}})),
              ckpt(obs::metrics().counter(
                  "fault_injected_total", {{"kind", "checkpoint_fail"}}))
        {
        }
    };
    static Counters c;
    switch (k) {
      case FaultKind::SocCrash:
        return c.crash;
      case FaultKind::LinkDegrade:
        return c.link;
      case FaultKind::Straggler:
        return c.straggler;
      case FaultKind::CheckpointFail:
        return c.ckpt;
    }
    panic("unknown fault kind");
}

} // namespace

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::SocCrash:
        return "soc-crash";
      case FaultKind::LinkDegrade:
        return "link-degrade";
      case FaultKind::Straggler:
        return "straggler";
      case FaultKind::CheckpointFail:
        return "checkpoint-fail";
    }
    panic("unknown fault kind");
}

FaultPlan
FaultPlan::random(const FaultPlanConfig &cfg)
{
    if (cfg.numSocs == 0 || cfg.horizonEpochs < 2)
        fatal("fault plan needs SoCs and a horizon of >= 2 epochs");
    Rng rng(cfg.seed);
    const std::size_t numBoards =
        (cfg.numSocs + cfg.socsPerBoard - 1) / cfg.socsPerBoard;
    // Epochs land in [1, horizon) so epoch 0 stays fault-free (the
    // run establishes a consensus baseline before anything breaks).
    auto pickEpoch = [&] {
        return 1 + static_cast<std::size_t>(
                       rng.uniformInt(cfg.horizonEpochs - 1));
    };

    FaultPlan plan;
    for (std::size_t i = 0; i < cfg.crashes; ++i) {
        FaultSpec s;
        s.kind = FaultKind::SocCrash;
        s.epoch = pickEpoch();
        s.soc = rng.uniformInt(cfg.numSocs);
        plan.add(s);
    }
    for (std::size_t i = 0; i < cfg.linkDegrades; ++i) {
        FaultSpec s;
        s.kind = FaultKind::LinkDegrade;
        s.epoch = pickEpoch();
        s.board = rng.uniformInt(numBoards);
        s.factor = cfg.linkFactor;
        s.durationEpochs = cfg.windowEpochs;
        plan.add(s);
    }
    for (std::size_t i = 0; i < cfg.stragglers; ++i) {
        FaultSpec s;
        s.kind = FaultKind::Straggler;
        s.epoch = pickEpoch();
        s.soc = rng.uniformInt(cfg.numSocs);
        s.factor = cfg.stragglerFactor;
        s.durationEpochs = cfg.windowEpochs;
        plan.add(s);
    }
    for (std::size_t i = 0; i < cfg.checkpointFailures; ++i) {
        FaultSpec s;
        s.kind = FaultKind::CheckpointFail;
        s.epoch = pickEpoch();
        s.count = cfg.checkpointFailBurst;
        plan.add(s);
    }
    return plan;
}

void
FaultPlan::add(const FaultSpec &spec)
{
    if (!(spec.factor > 0.0 && spec.factor <= 1.0))
        fatal("fault factor must be in (0, 1], got ", spec.factor);
    // Stable insert: new specs go after existing same-epoch ones.
    auto it = std::upper_bound(
        ordered.begin(), ordered.end(), spec,
        [](const FaultSpec &a, const FaultSpec &b) {
            return a.epoch < b.epoch;
        });
    ordered.insert(it, spec);
}

std::size_t
FaultPlan::countKind(FaultKind k) const
{
    std::size_t n = 0;
    for (const FaultSpec &s : ordered)
        n += s.kind == k ? 1 : 0;
    return n;
}

FaultInjector::FaultInjector(FaultPlan plan_in)
    : schedule(std::move(plan_in))
{
}

std::vector<FaultSpec>
FaultInjector::advanceTo(std::size_t epoch)
{
    epochNow = std::max(epochNow, epoch);
    // Expire stale rate windows.
    const auto expire = [this](auto &windows) {
        for (auto it = windows.begin(); it != windows.end();) {
            if (it->second.untilEpoch <= epochNow)
                it = windows.erase(it);
            else
                ++it;
        }
    };
    expire(slow);
    expire(degraded);

    std::vector<FaultSpec> fired;
    const auto &specs = schedule.specs();
    while (nextSpec < specs.size() &&
           specs[nextSpec].epoch <= epochNow) {
        const FaultSpec &s = specs[nextSpec++];
        injectedCounter(s.kind).add(1.0);
        switch (s.kind) {
          case FaultKind::SocCrash:
            if (dead.insert(s.soc).second)
                crashed.push_back(s.soc);
            break;
          case FaultKind::LinkDegrade:
            degraded.emplace(
                s.board, Window{s.epoch + s.durationEpochs, s.factor});
            break;
          case FaultKind::Straggler:
            slow.emplace(
                s.soc, Window{s.epoch + s.durationEpochs, s.factor});
            break;
          case FaultKind::CheckpointFail:
            ckptFailBudget += s.count;
            break;
        }
        fired.push_back(s);
    }
    return fired;
}

bool
FaultInjector::socAlive(sim::SocId soc) const
{
    return dead.find(soc) == dead.end();
}

double
FaultInjector::computeFactor(sim::SocId soc) const
{
    double f = 1.0;
    auto [lo, hi] = slow.equal_range(soc);
    for (auto it = lo; it != hi; ++it) {
        if (it->second.untilEpoch > epochNow)
            f = std::min(f, it->second.factor);
    }
    return f;
}

double
FaultInjector::linkFactor(sim::BoardId board) const
{
    double f = 1.0;
    auto [lo, hi] = degraded.equal_range(board);
    for (auto it = lo; it != hi; ++it) {
        if (it->second.untilEpoch > epochNow)
            f = std::min(f, it->second.factor);
    }
    return f;
}

bool
FaultInjector::checkpointWriteFails()
{
    if (ckptFailBudget == 0)
        return false;
    --ckptFailBudget;
    static obs::Counter &failures = obs::metrics().counter(
        "checkpoint_write_failures_total");
    failures.add(1.0);
    return true;
}

} // namespace fault
} // namespace socflow
