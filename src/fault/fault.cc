#include "fault/fault.hh"

#include <algorithm>

#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace socflow {
namespace fault {

namespace {

/** Injection accounting, one counter per fault kind. */
obs::Counter &
injectedCounter(FaultKind k)
{
    struct Counters {
        obs::Counter &crash;
        obs::Counter &link;
        obs::Counter &straggler;
        obs::Counter &ckpt;
        obs::Counter &midWave;
        obs::Counter &gradCorrupt;
        obs::Counter &leader;
        obs::Counter &boardPart;
        obs::Counter &switchPart;
        obs::Counter &rejoin;
        obs::Counter &psServer;
        obs::Counter &rackPower;
        obs::Counter &replicaLoss;
        Counters()
            : crash(obs::metrics().counter("fault_injected_total",
                                           {{"kind", "soc_crash"}})),
              link(obs::metrics().counter("fault_injected_total",
                                          {{"kind", "link_degrade"}})),
              straggler(obs::metrics().counter(
                  "fault_injected_total", {{"kind", "straggler"}})),
              ckpt(obs::metrics().counter(
                  "fault_injected_total", {{"kind", "checkpoint_fail"}})),
              midWave(obs::metrics().counter(
                  "fault_injected_total",
                  {{"kind", "soc_crash_mid_wave"}})),
              gradCorrupt(obs::metrics().counter(
                  "fault_injected_total", {{"kind", "grad_corrupt"}})),
              leader(obs::metrics().counter(
                  "fault_injected_total", {{"kind", "leader_crash"}})),
              boardPart(obs::metrics().counter(
                  "fault_injected_total",
                  {{"kind", "board_partition"}})),
              switchPart(obs::metrics().counter(
                  "fault_injected_total",
                  {{"kind", "switch_partition"}})),
              rejoin(obs::metrics().counter(
                  "fault_injected_total", {{"kind", "soc_rejoin"}})),
              psServer(obs::metrics().counter(
                  "fault_injected_total",
                  {{"kind", "ps_server_crash"}})),
              rackPower(obs::metrics().counter(
                  "fault_injected_total",
                  {{"kind", "rack_power_loss"}})),
              replicaLoss(obs::metrics().counter(
                  "fault_injected_total",
                  {{"kind", "ckpt_replica_loss"}}))
        {
        }
    };
    static Counters c;
    switch (k) {
      case FaultKind::SocCrash:
        return c.crash;
      case FaultKind::LinkDegrade:
        return c.link;
      case FaultKind::Straggler:
        return c.straggler;
      case FaultKind::CheckpointFail:
        return c.ckpt;
      case FaultKind::SocCrashMidWave:
        return c.midWave;
      case FaultKind::GradCorrupt:
        return c.gradCorrupt;
      case FaultKind::LeaderCrash:
        return c.leader;
      case FaultKind::BoardPartition:
        return c.boardPart;
      case FaultKind::SwitchPartition:
        return c.switchPart;
      case FaultKind::SocRejoin:
        return c.rejoin;
      case FaultKind::PsServerCrash:
        return c.psServer;
      case FaultKind::RackPowerLoss:
        return c.rackPower;
      case FaultKind::CkptReplicaLoss:
        return c.replicaLoss;
    }
    panic("unknown fault kind");
}

/** Partition accounting, labelled by cut scope. */
obs::Counter &
partitionCounter(FaultKind k)
{
    struct Counters {
        obs::Counter &board;
        obs::Counter &sw;
        Counters()
            : board(obs::metrics().counter("partition_total",
                                           {{"kind", "board"}})),
              sw(obs::metrics().counter("partition_total",
                                        {{"kind", "switch"}}))
        {
        }
    };
    static Counters c;
    return k == FaultKind::BoardPartition ? c.board : c.sw;
}

} // namespace

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::SocCrash:
        return "soc-crash";
      case FaultKind::LinkDegrade:
        return "link-degrade";
      case FaultKind::Straggler:
        return "straggler";
      case FaultKind::CheckpointFail:
        return "checkpoint-fail";
      case FaultKind::SocCrashMidWave:
        return "soc-crash-mid-wave";
      case FaultKind::GradCorrupt:
        return "grad-corrupt";
      case FaultKind::LeaderCrash:
        return "leader-crash";
      case FaultKind::BoardPartition:
        return "board-partition";
      case FaultKind::SwitchPartition:
        return "switch-partition";
      case FaultKind::SocRejoin:
        return "soc-rejoin";
      case FaultKind::PsServerCrash:
        return "ps-server-crash";
      case FaultKind::RackPowerLoss:
        return "rack-power-loss";
      case FaultKind::CkptReplicaLoss:
        return "ckpt-replica-loss";
    }
    panic("unknown fault kind");
}

const char *
faultPhaseName(FaultPhase p)
{
    switch (p) {
      case FaultPhase::Compute:
        return "compute";
      case FaultPhase::Wave1:
        return "wave1";
      case FaultPhase::Wave2:
        return "wave2";
      case FaultPhase::LeaderRing:
        return "leader-ring";
      case FaultPhase::Checkpoint:
        return "checkpoint";
    }
    panic("unknown fault phase");
}

FaultPlan
FaultPlan::random(const FaultPlanConfig &cfg)
{
    if (cfg.numSocs == 0 || cfg.horizonEpochs < 2)
        fatal("fault plan needs SoCs and a horizon of >= 2 epochs");
    Rng rng(cfg.seed);
    const std::size_t numBoards =
        (cfg.numSocs + cfg.socsPerBoard - 1) / cfg.socsPerBoard;
    // Epochs land in [1, horizon) so epoch 0 stays fault-free (the
    // run establishes a consensus baseline before anything breaks).
    auto pickEpoch = [&] {
        return 1 + static_cast<std::size_t>(
                       rng.uniformInt(cfg.horizonEpochs - 1));
    };
    auto pickStep = [&] {
        return cfg.stepsPerEpoch == 0
                   ? std::size_t{0}
                   : static_cast<std::size_t>(
                         rng.uniformInt(cfg.stepsPerEpoch));
    };

    FaultPlan plan;
    for (std::size_t i = 0; i < cfg.crashes; ++i) {
        FaultSpec s;
        s.kind = FaultKind::SocCrash;
        s.epoch = pickEpoch();
        s.soc = rng.uniformInt(cfg.numSocs);
        plan.add(s);
    }
    for (std::size_t i = 0; i < cfg.linkDegrades; ++i) {
        FaultSpec s;
        s.kind = FaultKind::LinkDegrade;
        s.epoch = pickEpoch();
        s.board = rng.uniformInt(numBoards);
        s.factor = cfg.linkFactor;
        s.durationEpochs = cfg.windowEpochs;
        plan.add(s);
    }
    for (std::size_t i = 0; i < cfg.stragglers; ++i) {
        FaultSpec s;
        s.kind = FaultKind::Straggler;
        s.epoch = pickEpoch();
        s.soc = rng.uniformInt(cfg.numSocs);
        s.factor = cfg.stragglerFactor;
        s.durationEpochs = cfg.windowEpochs;
        plan.add(s);
    }
    for (std::size_t i = 0; i < cfg.checkpointFailures; ++i) {
        FaultSpec s;
        s.kind = FaultKind::CheckpointFail;
        s.epoch = pickEpoch();
        s.phase = FaultPhase::Checkpoint;
        s.count = cfg.checkpointFailBurst;
        plan.add(s);
    }
    for (std::size_t i = 0; i < cfg.midWaveCrashes; ++i) {
        FaultSpec s;
        s.kind = FaultKind::SocCrashMidWave;
        s.epoch = pickEpoch();
        s.step = pickStep();
        s.phase = rng.bernoulli(0.5) ? FaultPhase::Wave1
                                     : FaultPhase::Wave2;
        s.soc = rng.uniformInt(cfg.numSocs);
        s.progress = 0.25 + 0.5 * rng.uniform();
        plan.add(s);
    }
    for (std::size_t i = 0; i < cfg.gradCorrupts; ++i) {
        FaultSpec s;
        s.kind = FaultKind::GradCorrupt;
        s.epoch = pickEpoch();
        s.step = pickStep();
        s.phase = rng.bernoulli(0.5) ? FaultPhase::Wave1
                                     : FaultPhase::Wave2;
        s.soc = rng.uniformInt(cfg.numSocs);
        s.count = cfg.gradCorruptBurst;
        plan.add(s);
    }
    for (std::size_t i = 0; i < cfg.leaderCrashes; ++i) {
        FaultSpec s;
        s.kind = FaultKind::LeaderCrash;
        s.epoch = pickEpoch();
        s.step = pickStep();
        s.phase = FaultPhase::LeaderRing;
        s.soc = rng.uniformInt(cfg.numSocs);
        plan.add(s);
    }
    for (std::size_t i = 0; i < cfg.boardPartitions; ++i) {
        FaultSpec s;
        s.kind = FaultKind::BoardPartition;
        s.epoch = pickEpoch();
        s.board = rng.uniformInt(numBoards);
        s.durationEpochs = cfg.partitionWindowEpochs;
        plan.add(s);
    }
    for (std::size_t i = 0; i < cfg.switchPartitions; ++i) {
        FaultSpec s;
        s.kind = FaultKind::SwitchPartition;
        s.epoch = pickEpoch();
        const std::size_t span =
            std::min(cfg.switchPartitionBoards, numBoards);
        s.board = rng.uniformInt(numBoards - span + 1);
        s.count = span;
        s.durationEpochs = cfg.partitionWindowEpochs;
        plan.add(s);
    }
    // Rack cuts: SwitchPartitions aligned to rack boundaries so one
    // whole rack of the fleet drops off the core at a time. Needs at
    // least two full racks -- cutting the only rack cuts everyone and
    // leaves no majority to keep training.
    const std::size_t numRacks =
        cfg.boardsPerRack > 0 ? numBoards / cfg.boardsPerRack : 0;
    for (std::size_t i = 0; numRacks > 1 && i < cfg.rackCuts; ++i) {
        plan.add(rackCut(rng.uniformInt(numRacks), cfg.boardsPerRack,
                         pickEpoch(), cfg.partitionWindowEpochs));
    }
    // PS-server crashes land on the sharded parameter server's shard
    // hosts: the first SoC of each of the first min(psShards, boards)
    // boards (matching ps::ShardMap's initial placement). The loop
    // draws nothing when the count is zero, so pre-existing seeded
    // plans replay byte-identically.
    const std::size_t serverPool = std::min(
        std::max<std::size_t>(cfg.psShards, 1), numBoards);
    for (std::size_t i = 0; i < cfg.psServerCrashes; ++i) {
        FaultSpec s;
        s.kind = FaultKind::PsServerCrash;
        s.epoch = pickEpoch();
        s.step = pickStep();
        s.soc = rng.uniformInt(serverPool) * cfg.socsPerBoard;
        plan.add(s);
    }
    // Rack power losses land mid-epoch (random step, Compute phase)
    // on a random rack; `rackPowerLossRacks` >= the fleet's rack
    // count makes the loss fleet-wide. Both loops draw nothing when
    // their count is zero, so existing seeded plans stay
    // byte-identical.
    for (std::size_t i = 0; i < cfg.rackPowerLosses; ++i) {
        FaultSpec s;
        s.kind = FaultKind::RackPowerLoss;
        s.epoch = pickEpoch();
        s.step = pickStep();
        s.board = rng.uniformInt(std::max<std::size_t>(cfg.numRacks, 1));
        s.count = std::max<std::size_t>(cfg.rackPowerLossRacks, 1);
        plan.add(s);
    }
    for (std::size_t i = 0; i < cfg.ckptReplicaLosses; ++i) {
        FaultSpec s;
        s.kind = FaultKind::CkptReplicaLoss;
        s.epoch = pickEpoch();
        s.count = std::max<std::size_t>(cfg.ckptReplicaLossBurst, 1);
        plan.add(s);
    }
    // Rejoins target SoCs the plan has already crashed (when it has
    // any), landing strictly after the crash so the comeback is real.
    std::vector<FaultSpec> crashes;
    for (const FaultSpec &s : plan.specs()) {
        if (s.kind == FaultKind::SocCrash ||
            s.kind == FaultKind::SocCrashMidWave ||
            s.kind == FaultKind::LeaderCrash ||
            s.kind == FaultKind::PsServerCrash)
            crashes.push_back(s);
    }
    for (std::size_t i = 0; i < cfg.rejoins; ++i) {
        FaultSpec s;
        s.kind = FaultKind::SocRejoin;
        if (!crashes.empty()) {
            const FaultSpec &c =
                crashes[rng.uniformInt(crashes.size())];
            s.soc = c.soc;
            s.epoch = std::min(c.epoch + 1 +
                                   rng.uniformInt(cfg.windowEpochs),
                               cfg.horizonEpochs - 1);
        } else {
            s.soc = rng.uniformInt(cfg.numSocs);
            s.epoch = pickEpoch();
        }
        plan.add(s);
    }
    return plan;
}

FaultSpec
rackCut(sim::RackId rack, std::size_t boards_per_rack,
        std::size_t epoch, std::size_t duration_epochs)
{
    if (boards_per_rack == 0)
        fatal("rack cut requires a positive rack width");
    FaultSpec s;
    s.kind = FaultKind::SwitchPartition;
    s.epoch = epoch;
    s.board = rack * boards_per_rack;
    s.count = boards_per_rack;
    s.durationEpochs = duration_epochs;
    return s;
}

void
FaultPlan::add(const FaultSpec &spec)
{
    if (!(spec.factor > 0.0 && spec.factor <= 1.0))
        fatal("fault factor must be in (0, 1], got ", spec.factor);
    if (!(spec.progress >= 0.0 && spec.progress <= 1.0))
        fatal("fault progress must be in [0, 1], got ", spec.progress);
    // Stable insert: new specs go after existing same-point ones.
    auto it = std::upper_bound(
        ordered.begin(), ordered.end(), spec,
        [](const FaultSpec &a, const FaultSpec &b) {
            return a.point() < b.point();
        });
    ordered.insert(it, spec);
}

std::size_t
FaultPlan::countKind(FaultKind k) const
{
    std::size_t n = 0;
    for (const FaultSpec &s : ordered)
        n += s.kind == k ? 1 : 0;
    return n;
}

FaultInjector::FaultInjector(FaultPlan plan_in)
    : schedule(std::move(plan_in))
{
}

std::vector<FaultSpec>
FaultInjector::advanceTo(const FaultPoint &now)
{
    clock = std::max(clock, now);
    // Expire rate windows stale at the clock's epoch.
    const auto expire = [this](auto &windows) {
        for (auto it = windows.begin(); it != windows.end();) {
            if (it->second.untilEpoch <= clock.epoch)
                it = windows.erase(it);
            else
                ++it;
        }
    };
    expire(slow);
    expire(degraded);
    expire(partitioned);

    std::vector<FaultSpec> fired;
    const auto &specs = schedule.specs();
    while (nextSpec < specs.size() &&
           specs[nextSpec].point() <= clock) {
        const FaultSpec &s = specs[nextSpec++];
        injectedCounter(s.kind).add(1.0);
        if (obs::flightRecorder().armed()) {
            // Keep the injection itself in the post-mortem timeline,
            // next to the recovery spans it triggers.
            obs::TraceEvent e;
            e.name = faultKindName(s.kind);
            e.category = "fault-injected";
            e.phase = 'i';
            e.tid = obs::kTrackControl;
            e.args.emplace_back("epoch", std::to_string(s.epoch));
            e.args.emplace_back("step", std::to_string(s.step));
            e.args.emplace_back("soc", std::to_string(s.soc));
            obs::flightRecorder().record(e);
        }
        switch (s.kind) {
          case FaultKind::SocCrash:
          case FaultKind::SocCrashMidWave:
          case FaultKind::LeaderCrash:
          case FaultKind::PsServerCrash:
            if (dead.insert(s.soc).second)
                crashed.push_back(s.soc);
            break;
          case FaultKind::LinkDegrade:
            degraded.emplace(
                s.board, Window{s.epoch + s.durationEpochs, s.factor});
            break;
          case FaultKind::Straggler:
            slow.emplace(
                s.soc, Window{s.epoch + s.durationEpochs, s.factor});
            break;
          case FaultKind::CheckpointFail:
            ckptFailBudget += s.count;
            break;
          case FaultKind::GradCorrupt:
            gradCorruptBudget += s.count;
            break;
          case FaultKind::BoardPartition:
            partitioned.emplace(
                s.board, Window{s.epoch + s.durationEpochs, 0.0});
            partitionCounter(s.kind).add(1.0);
            break;
          case FaultKind::SwitchPartition:
            // A ToR port/cable cut takes out a run of adjacent
            // boards: [board, board + count).
            for (std::size_t b = 0; b < std::max<std::size_t>(
                                            s.count, 1); ++b)
                partitioned.emplace(
                    s.board + b,
                    Window{s.epoch + s.durationEpochs, 0.0});
            partitionCounter(s.kind).add(1.0);
            break;
          case FaultKind::SocRejoin:
            // The SoC is back on the network; the membership layer
            // runs the actual rejoin protocol (weight catch-up,
            // generation bump, live re-mapping).
            if (dead.erase(s.soc) != 0)
                crashed.erase(std::remove(crashed.begin(),
                                          crashed.end(), s.soc),
                              crashed.end());
            break;
          case FaultKind::RackPowerLoss:
            // Event-only: a power cycle reboots the machines rather
            // than removing them, so the dead-set stays untouched.
            // Volatile training state on the affected racks is gone;
            // the trainer observes the fired spec and aborts the
            // epoch, then restarts from a durable checkpoint.
            break;
          case FaultKind::CkptReplicaLoss:
            // Durable-storage loss: the replicated checkpoint store
            // drains this budget at its next read/write boundary and
            // destroys that many replica copies.
            replicaLossBudget += std::max<std::size_t>(s.count, 1);
            break;
        }
        fired.push_back(s);
    }
    return fired;
}

std::vector<FaultSpec>
FaultInjector::advanceTo(std::size_t epoch)
{
    return advanceTo(FaultPoint::epochEnd(epoch));
}

bool
FaultInjector::socAlive(sim::SocId soc) const
{
    return dead.find(soc) == dead.end();
}

double
FaultInjector::computeFactor(sim::SocId soc) const
{
    double f = 1.0;
    auto [lo, hi] = slow.equal_range(soc);
    for (auto it = lo; it != hi; ++it) {
        if (it->second.untilEpoch > clock.epoch)
            f = std::min(f, it->second.factor);
    }
    return f;
}

double
FaultInjector::linkFactor(sim::BoardId board) const
{
    double f = 1.0;
    auto [lo, hi] = degraded.equal_range(board);
    for (auto it = lo; it != hi; ++it) {
        if (it->second.untilEpoch > clock.epoch)
            f = std::min(f, it->second.factor);
    }
    return f;
}

bool
FaultInjector::boardReachable(sim::BoardId board) const
{
    auto [lo, hi] = partitioned.equal_range(board);
    for (auto it = lo; it != hi; ++it) {
        if (it->second.untilEpoch > clock.epoch)
            return false;
    }
    return true;
}

bool
FaultInjector::checkpointWriteFails()
{
    if (ckptFailBudget == 0)
        return false;
    --ckptFailBudget;
    static obs::Counter &failures = obs::metrics().counter(
        "checkpoint_write_failures_total");
    failures.add(1.0);
    return true;
}

bool
FaultInjector::corruptNextChunk()
{
    if (gradCorruptBudget == 0)
        return false;
    --gradCorruptBudget;
    return true;
}

std::size_t
FaultInjector::drainGradCorrupt()
{
    const std::size_t n = gradCorruptBudget;
    gradCorruptBudget = 0;
    return n;
}

std::size_t
FaultInjector::drainReplicaLosses()
{
    const std::size_t n = replicaLossBudget;
    replicaLossBudget = 0;
    return n;
}

} // namespace fault
} // namespace socflow
