/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components in SoCFlow (dataset synthesis, shuffling,
 * trace generation, initialization) draw from this generator so that
 * experiments are reproducible from a single seed. The implementation
 * is xoshiro256**, seeded through SplitMix64, which is fast, passes
 * BigCrush, and is trivially portable.
 */

#ifndef SOCFLOW_UTIL_RNG_HH
#define SOCFLOW_UTIL_RNG_HH

#include <cmath>
#include <cstdint>
#include <vector>

namespace socflow {

/**
 * A self-contained 256-bit-state PRNG (xoshiro256**).
 *
 * Also provides the distribution helpers used across the codebase:
 * uniform reals/ints, Gaussian deviates, Bernoulli draws, and
 * Fisher-Yates shuffling.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal deviate (Box-Muller, cached pair). */
    double gaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with probability p of returning true. */
    bool bernoulli(double p);

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng split();

  private:
    std::uint64_t s[4];
    bool hasCachedGaussian = false;
    double cachedGaussian = 0.0;
};

} // namespace socflow

#endif // SOCFLOW_UTIL_RNG_HH
