/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in SoCFlow itself) and aborts; fatal() is for user
 * errors (bad configuration, invalid arguments) and exits cleanly with
 * an error code; warn()/inform() report conditions without stopping.
 */

#ifndef SOCFLOW_UTIL_LOGGING_HH
#define SOCFLOW_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace socflow {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/**
 * Global log verbosity. Messages above this level are suppressed.
 * Defaults to Inform; benches lower it to Warn to keep output clean.
 */
LogLevel logLevel();

/** Set the global log verbosity. */
void setLogLevel(LogLevel level);

namespace detail {

/** Emit one formatted log line with a severity prefix. */
void emitLog(const char *prefix, const std::string &msg);

/** Compose a message from stream-style arguments. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Report normal operating status the user should see. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Inform)
        detail::emitLog("info", detail::composeMessage(args...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emitLog("warn", detail::composeMessage(args...));
}

/** Debug-level trace output; off by default. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::emitLog("debug", detail::composeMessage(args...));
}

/**
 * Terminate because of a user-caused error (bad config, bad argument).
 * Exits with status 1; never returns.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitLog("fatal", detail::composeMessage(args...));
    std::exit(1);
}

/**
 * Terminate because of an internal SoCFlow bug (broken invariant).
 * Calls abort() so a debugger or core dump can capture state.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitLog("panic", detail::composeMessage(args...));
    std::abort();
}

/** Abort with a message if an internal invariant does not hold. */
#define SOCFLOW_ASSERT(cond, ...)                                        \
    do {                                                                 \
        if (!(cond))                                                     \
            ::socflow::panic("assertion failed: " #cond " ",            \
                             ##__VA_ARGS__);                             \
    } while (0)

} // namespace socflow

#endif // SOCFLOW_UTIL_LOGGING_HH
