#include "util/table.hh"

#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace socflow {

Table::Table(std::string title) : title(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> h)
{
    header = std::move(h);
}

void
Table::addRow(std::vector<std::string> row)
{
    if (!header.empty() && row.size() != header.size())
        panic("table row width ", row.size(), " != header width ",
              header.size());
    rows.push_back(std::move(row));
}

std::string
Table::str() const
{
    // Compute column widths across header and all rows.
    std::size_t cols = header.size();
    for (const auto &r : rows)
        cols = std::max(cols, r.size());

    std::vector<std::size_t> width(cols, 0);
    auto grow = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    if (!header.empty())
        grow(header);
    for (const auto &r : rows)
        grow(r);

    std::ostringstream oss;
    if (!title.empty())
        oss << "== " << title << " ==\n";

    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            oss << r[i];
            if (i + 1 < r.size())
                oss << std::string(width[i] - r[i].size() + 2, ' ');
        }
        oss << '\n';
    };
    if (!header.empty()) {
        emit(header);
        std::size_t total = 0;
        for (std::size_t i = 0; i < cols; ++i)
            total += width[i] + (i + 1 < cols ? 2 : 0);
        oss << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows)
        emit(r);
    return oss.str();
}

std::string
Table::csv() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            oss << r[i];
            if (i + 1 < r.size())
                oss << ',';
        }
        oss << '\n';
    };
    if (!header.empty())
        emit(header);
    for (const auto &r : rows)
        emit(r);
    return oss.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
    std::fflush(stdout);
}

std::string
formatDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
formatDuration(double seconds)
{
    char buf[64];
    if (seconds < 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
    } else if (seconds < 1.0) {
        std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
    } else if (seconds < 120.0) {
        std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
    } else if (seconds < 7200.0) {
        std::snprintf(buf, sizeof(buf), "%.1fmin", seconds / 60.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2fh", seconds / 3600.0);
    }
    return buf;
}

std::string
formatBytes(double bytes)
{
    char buf[64];
    if (bytes < 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
    } else if (bytes < 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.1fKiB", bytes / 1024.0);
    } else if (bytes < 1024.0 * 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.1fMiB",
                      bytes / (1024.0 * 1024.0));
    } else {
        std::snprintf(buf, sizeof(buf), "%.2fGiB",
                      bytes / (1024.0 * 1024.0 * 1024.0));
    }
    return buf;
}

} // namespace socflow
