/**
 * @file
 * Integrity and fingerprint hashing.
 *
 * crc32() is the IEEE 802.3 CRC-32 used to tag gradient chunks on
 * ring segments (collectives/reduce.hh): it detects every single-bit
 * flip and all burst errors up to 32 bits, which is exactly the
 * corruption model of the GradCorrupt fault. Fnv1a64 is a streaming
 * FNV-1a accumulator used for the deterministic recovery-timeline
 * hash (same seed => same hash) that the chaos replay harness
 * compares across runs.
 */

#ifndef SOCFLOW_UTIL_HASH_HH
#define SOCFLOW_UTIL_HASH_HH

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace socflow {

/** CRC-32 (IEEE, reflected, init/final 0xFFFFFFFF) of `len` bytes. */
std::uint32_t crc32(const void *data, std::size_t len);

/** Streaming 64-bit FNV-1a accumulator. */
class Fnv1a64
{
  public:
    /** Mix raw bytes into the hash. */
    void
    mixBytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ULL;
        }
    }

    /** Mix one integer word. */
    void
    mix(std::uint64_t v)
    {
        mixBytes(&v, sizeof(v));
    }

    /** Mix a double by bit pattern (deterministic across runs). */
    void
    mix(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    }

    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h = 0xcbf29ce484222325ULL;
};

} // namespace socflow

#endif // SOCFLOW_UTIL_HASH_HH
