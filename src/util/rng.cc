#include "util/rng.hh"

#include "util/logging.hh"

namespace socflow {

namespace {

/** SplitMix64 step, used for seeding. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    SOCFLOW_ASSERT(n > 0, "uniformInt requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ULL - (~0ULL % n);
    std::uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

double
Rng::gaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian = r * std::sin(theta);
    hasCachedGaussian = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
}

} // namespace socflow
