/**
 * @file
 * Small statistics accumulators used by the simulator and benches.
 */

#ifndef SOCFLOW_UTIL_STATS_HH
#define SOCFLOW_UTIL_STATS_HH

#include <algorithm>
#include <cstddef>
#include <vector>

namespace socflow {

/**
 * Numerically stable (Welford) running mean/variance accumulator.
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples seen so far. */
    std::size_t count() const { return n; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n ? m : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen; 0 when empty. */
    double min() const { return n ? lo : 0.0; }

    /** Largest sample seen; 0 when empty. */
    double max() const { return n ? hi : 0.0; }

    /** Sum of all samples. */
    double sum() const { return total; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/**
 * Retains all samples to answer percentile queries; used for latency
 * distributions in the network simulator tests.
 */
class PercentileTracker
{
  public:
    /** Record one sample. */
    void add(double x) { samples.push_back(x); }

    /** Number of recorded samples. */
    std::size_t count() const { return samples.size(); }

    /**
     * Percentile by nearest-rank. @param p in [0, 100].
     * Returns 0 when no samples have been recorded.
     */
    double percentile(double p) const;

  private:
    mutable std::vector<double> samples;
};

/**
 * Exponential moving average, used by the underclocking monitor to
 * smooth per-batch step-time observations.
 */
class Ema
{
  public:
    /** @param alpha smoothing weight of the newest sample, in (0,1]. */
    explicit Ema(double alpha) : alpha(alpha) {}

    /** Fold one sample; the first sample initializes the average. */
    void add(double x);

    /** Current smoothed value; 0 before any sample. */
    double value() const { return current; }

    /** True once at least one sample has been folded in. */
    bool initialized() const { return seeded; }

  private:
    double alpha;
    double current = 0.0;
    bool seeded = false;
};

} // namespace socflow

#endif // SOCFLOW_UTIL_STATS_HH
