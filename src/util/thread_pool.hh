/**
 * @file
 * A minimal fixed-size thread pool with a parallel-for helper.
 *
 * The simulation core fans independent work items (per-group training
 * steps, flow-network bottleneck scans, GEMM row blocks) across the
 * pool. Callers are responsible for keeping results bit-reproducible
 * regardless of pool size: each parallel item must write disjoint
 * outputs, and any cross-item accumulation must be folded serially in
 * a fixed order after the join (see DESIGN.md ch. 9).
 *
 * Safety properties added for the parallel core:
 *  - exceptions thrown by submitted tasks are captured and rethrown
 *    from wait() / parallelFor() on the calling thread (first wins);
 *  - parallelFor() called from inside a pool worker runs inline on
 *    the calling thread (nested-use deadlock guard) -- nested
 *    parallelism degrades to serial instead of deadlocking;
 *  - the process-wide pool can be resized between parallel regions
 *    via setGlobalThreads(), which tests use to prove serial-vs-N
 *    bit-exactness in one process.
 */

#ifndef SOCFLOW_UTIL_THREAD_POOL_HH
#define SOCFLOW_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace socflow {

/**
 * Fixed-size worker pool. Tasks are arbitrary void() callables; the
 * pool drains and joins on destruction.
 */
class ThreadPool
{
  public:
    /** @param num_threads 0 selects hardware_concurrency(). */
    explicit ThreadPool(std::size_t num_threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Enqueue one task for asynchronous execution. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. If any task
     * threw, the first captured exception is rethrown here.
     */
    void wait();

    /** Number of worker threads. */
    std::size_t size() const { return workers.size(); }

    /**
     * Run fn(i) for i in [0, n) across the pool and block until all
     * iterations complete. Iterations are distributed in contiguous
     * blocks. Runs inline (serially) when n <= 1, when the pool has
     * a single worker, or when called from inside a pool worker
     * (nested-use guard). Rethrows the first task exception.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** True when the calling thread is a worker of *any* pool. */
    static bool inWorkerThread();

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::queue<std::function<void()>> tasks;
    std::mutex mutex;
    std::condition_variable taskReady;
    std::condition_variable allDone;
    std::size_t inFlight = 0;
    bool stopping = false;
    std::exception_ptr firstError; //!< guarded by mutex
};

/**
 * Process-wide shared pool for the simulation core. Created on first
 * use with setGlobalThreads()'s last value, else the SOCFLOW_THREADS
 * environment variable, else hardware_concurrency().
 */
ThreadPool &globalThreadPool();

/**
 * Resize the process-wide pool: joins the old workers and recreates
 * the pool with n threads (0 = hardware_concurrency) on next use.
 * Must not be called while parallel work is in flight.
 */
void setGlobalThreads(std::size_t n);

/** Worker count the process-wide pool has (or will have on first use). */
std::size_t globalThreads();

} // namespace socflow

#endif // SOCFLOW_UTIL_THREAD_POOL_HH
