/**
 * @file
 * A minimal fixed-size thread pool with a parallel-for helper.
 *
 * The training substrate uses it to evaluate independent worker
 * replicas concurrently; kernels stay single-threaded so results are
 * bit-reproducible regardless of pool size.
 */

#ifndef SOCFLOW_UTIL_THREAD_POOL_HH
#define SOCFLOW_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace socflow {

/**
 * Fixed-size worker pool. Tasks are arbitrary void() callables; the
 * pool drains and joins on destruction.
 */
class ThreadPool
{
  public:
    /** @param num_threads 0 selects hardware_concurrency(). */
    explicit ThreadPool(std::size_t num_threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Enqueue one task for asynchronous execution. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /** Number of worker threads. */
    std::size_t size() const { return workers.size(); }

    /**
     * Run fn(i) for i in [0, n) across the pool and block until all
     * iterations complete. Iterations are distributed in contiguous
     * blocks.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::queue<std::function<void()>> tasks;
    std::mutex mutex;
    std::condition_variable taskReady;
    std::condition_variable allDone;
    std::size_t inFlight = 0;
    bool stopping = false;
};

/** Process-wide shared pool for the training substrate. */
ThreadPool &globalThreadPool();

} // namespace socflow

#endif // SOCFLOW_UTIL_THREAD_POOL_HH
