#include "util/logging.hh"

namespace socflow {

namespace {

LogLevel globalLevel = LogLevel::Inform;

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail {

void
emitLog(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", prefix, msg.c_str());
    std::fflush(stderr);
}

} // namespace detail

} // namespace socflow
