#include "util/stats.hh"

#include <cmath>

namespace socflow {

void
RunningStat::add(double x)
{
    ++n;
    total += x;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    if (n == 1) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
PercentileTracker::percentile(double p) const
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    if (p <= 0.0)
        return samples.front();
    if (p >= 100.0)
        return samples.back();
    const double rank = p / 100.0 * static_cast<double>(samples.size());
    std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
    if (idx > 0)
        --idx;
    if (idx >= samples.size())
        idx = samples.size() - 1;
    return samples[idx];
}

void
Ema::add(double x)
{
    if (!seeded) {
        current = x;
        seeded = true;
    } else {
        current = alpha * x + (1.0 - alpha) * current;
    }
}

} // namespace socflow
