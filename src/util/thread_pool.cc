#include "util/thread_pool.hh"

#include <algorithm>

namespace socflow {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(
            1, std::thread::hardware_concurrency());
    }
    workers.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        stopping = true;
    }
    taskReady.notify_all();
    for (auto &t : workers)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        tasks.push(std::move(task));
        ++inFlight;
    }
    taskReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex);
    allDone.wait(lock, [this] { return inFlight == 0; });
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    const std::size_t chunks = std::min(n, workers.size());
    const std::size_t per = (n + chunks - 1) / chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * per;
        const std::size_t end = std::min(n, begin + per);
        if (begin >= end)
            break;
        submit([&fn, begin, end] {
            for (std::size_t i = begin; i < end; ++i)
                fn(i);
        });
    }
    wait();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            taskReady.wait(lock,
                           [this] { return stopping || !tasks.empty(); });
            if (tasks.empty()) {
                if (stopping)
                    return;
                continue;
            }
            task = std::move(tasks.front());
            tasks.pop();
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex);
            if (--inFlight == 0)
                allDone.notify_all();
        }
    }
}

ThreadPool &
globalThreadPool()
{
    static ThreadPool pool;
    return pool;
}

} // namespace socflow
