#include "util/thread_pool.hh"

#include <algorithm>
#include <cstdlib>

namespace socflow {

namespace {

// Set while a thread is executing inside any pool's workerLoop; the
// nested-use guard in parallelFor keys off it.
thread_local bool tlsPoolWorker = false;

std::size_t
hardwareThreads()
{
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

} // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0)
        num_threads = hardwareThreads();
    workers.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        stopping = true;
    }
    taskReady.notify_all();
    for (auto &t : workers)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        tasks.push(std::move(task));
        ++inFlight;
    }
    taskReady.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mutex);
        allDone.wait(lock, [this] { return inFlight == 0; });
        err = firstError;
        firstError = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    // Inline fast path: trivial sizes, a serial pool, or a nested
    // call from inside a worker (dispatching from a worker would
    // deadlock wait() against our own queue slot).
    if (n == 1 || workers.size() <= 1 || tlsPoolWorker) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    const std::size_t chunks = std::min(n, workers.size());
    const std::size_t per = (n + chunks - 1) / chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * per;
        const std::size_t end = std::min(n, begin + per);
        if (begin >= end)
            break;
        submit([&fn, begin, end] {
            for (std::size_t i = begin; i < end; ++i)
                fn(i);
        });
    }
    wait();
}

bool
ThreadPool::inWorkerThread()
{
    return tlsPoolWorker;
}

void
ThreadPool::workerLoop()
{
    tlsPoolWorker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            taskReady.wait(lock,
                           [this] { return stopping || !tasks.empty(); });
            if (tasks.empty()) {
                if (stopping)
                    return;
                continue;
            }
            task = std::move(tasks.front());
            tasks.pop();
        }
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mutex);
            if (!firstError)
                firstError = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex);
            if (--inFlight == 0)
                allDone.notify_all();
        }
    }
}

namespace {

std::mutex gPoolMutex;
// Intentionally leaked: an atexit destructor would join() the
// workers, and in a fork()ed child (gtest fast-style death tests,
// crash handlers) those threads no longer exist -- the join blocks
// forever on a phantom tid. Process exit reclaims everything anyway;
// setGlobalThreads() still deletes explicitly, where the workers are
// real and joinable.
ThreadPool *gPool = nullptr;
std::size_t gPoolThreads = 0; // 0 = unset -> env -> hardware

std::size_t
configuredThreads()
{
    if (gPoolThreads != 0)
        return gPoolThreads;
    if (const char *env = std::getenv("SOCFLOW_THREADS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<std::size_t>(v);
    }
    return hardwareThreads();
}

} // namespace

ThreadPool &
globalThreadPool()
{
    std::lock_guard<std::mutex> lock(gPoolMutex);
    if (!gPool)
        gPool = new ThreadPool(configuredThreads());
    return *gPool;
}

void
setGlobalThreads(std::size_t n)
{
    std::lock_guard<std::mutex> lock(gPoolMutex);
    gPoolThreads = n;
    delete gPool; // joins old workers; recreated lazily
    gPool = nullptr;
}

std::size_t
globalThreads()
{
    std::lock_guard<std::mutex> lock(gPoolMutex);
    if (gPool)
        return gPool->size();
    return configuredThreads();
}

} // namespace socflow
