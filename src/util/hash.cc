#include "util/hash.hh"

#include <array>

namespace socflow {

namespace {

/** Nibble-at-a-time table for the reflected polynomial 0xEDB88320. */
constexpr std::array<std::uint32_t, 16> kCrcTable = [] {
    std::array<std::uint32_t, 16> t{};
    for (std::uint32_t i = 0; i < 16; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 4; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}();

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i) {
        c = kCrcTable[(c ^ p[i]) & 0x0Fu] ^ (c >> 4);
        c = kCrcTable[(c ^ (p[i] >> 4)) & 0x0Fu] ^ (c >> 4);
    }
    return c ^ 0xFFFFFFFFu;
}

} // namespace socflow
