/**
 * @file
 * Aligned console tables and CSV output for the benchmark harnesses.
 *
 * Every figure/table bench prints its rows both as a human-readable
 * aligned table (stdout) and, optionally, as CSV for downstream
 * plotting.
 */

#ifndef SOCFLOW_UTIL_TABLE_HH
#define SOCFLOW_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace socflow {

/**
 * Collects string cells and renders an aligned ASCII table.
 */
class Table
{
  public:
    /** @param title optional heading printed above the table. */
    explicit Table(std::string title = "");

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header width if one is set. */
    void addRow(std::vector<std::string> row);

    /** Render the aligned table to a string. */
    std::string str() const;

    /** Render rows as CSV (header first when present). */
    std::string csv() const;

    /** Print the aligned table to stdout. */
    void print() const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows.size(); }

  private:
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with the given precision. */
std::string formatDouble(double v, int precision = 2);

/** Format seconds as a compact human-readable duration. */
std::string formatDuration(double seconds);

/** Format a byte count with binary units. */
std::string formatBytes(double bytes);

} // namespace socflow

#endif // SOCFLOW_UTIL_TABLE_HH
