/**
 * @file
 * Semantic (numerical) side of the collectives: exact reductions over
 * flat parameter/gradient vectors, plus the top-k sparsification used
 * by the HiPress/DGC baseline.
 *
 * Timing and contention of these operations are modeled separately by
 * CollectiveEngine; the math here is what the training replicas
 * actually apply, so convergence behaviour is real.
 */

#ifndef SOCFLOW_COLLECTIVES_REDUCE_HH
#define SOCFLOW_COLLECTIVES_REDUCE_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace socflow {
namespace collectives {

/** dst += src (sizes must match). */
void vecAdd(std::vector<float> &dst, const std::vector<float> &src);

/** dst *= alpha. */
void vecScale(std::vector<float> &dst, float alpha);

/** Element-wise mean of all vectors, written back into every vector
 *  (the semantics of an all-reduce-average). */
void allReduceAverage(std::vector<std::vector<float> *> &vectors);

/** Integrity accounting of one verified (chunk-CRC) reduction. */
struct VerifiedReduceOutcome {
    /** Chunk transfers carried (and CRC-verified) by the reduce. */
    std::size_t chunks = 0;
    /** CRC mismatches detected at the receiver. */
    std::size_t corruptDetected = 0;
    /** Chunks re-requested clean from their source. */
    std::size_t retransmitted = 0;
    /** False when a chunk stayed corrupt past `max_retries`; no
     *  vector was modified in that case. */
    bool applied = true;
};

/**
 * allReduceAverage with chunk-level CRC32 integrity tags: every
 * contribution travels in chunks of `chunk_elems` floats, each tagged
 * with the CRC32 of its payload. `corrupt_next` models the transport
 * (fault::FaultInjector::corruptNextChunk): when it returns true the
 * arriving copy of the chunk is bit-flipped, the receiver detects the
 * tag mismatch -- CRC32 catches every single-bit error by
 * construction -- and re-requests the chunk, consuming further
 * corruption events on each retransmission. A chunk corrupted more
 * than `max_retries` times in a row aborts the reduction with
 * `applied = false` and leaves every input vector untouched: a
 * partial gradient is *dropped*, never silently wrong.
 */
VerifiedReduceOutcome verifiedAllReduceAverage(
    std::vector<std::vector<float> *> &vectors,
    std::size_t chunk_elems,
    const std::function<bool()> &corrupt_next,
    std::size_t max_retries);

/**
 * Weighted average into `out`: out = sum_i w_i * v_i / sum_i w_i.
 * Sizes must match; weights must not all be zero.
 */
void weightedAverage(const std::vector<const std::vector<float> *> &vs,
                     const std::vector<double> &weights,
                     std::vector<float> &out);

/** A sparse gradient: parallel index/value arrays. */
struct SparseGrad {
    std::vector<std::size_t> indices;
    std::vector<float> values;

    /** Bytes on the wire: 4 bytes value + 4 bytes index each. */
    double
    wireBytes() const
    {
        return 8.0 * static_cast<double>(values.size());
    }
};

/**
 * Deep-Gradient-Compression style top-k selection: keep the `ratio`
 * fraction of entries with the largest magnitude; everything else
 * stays in `residual` for the next iteration (error feedback).
 * @param grad dense gradient; compressed entries are zeroed in the
 *        residual sense (grad itself is not modified).
 * @param residual accumulates the unsent mass; same size as grad.
 */
SparseGrad compressTopK(const std::vector<float> &grad,
                        std::vector<float> &residual, double ratio);

/** Scatter-add a sparse gradient into a dense accumulator. */
void applySparse(const SparseGrad &sparse, std::vector<float> &dense);

} // namespace collectives
} // namespace socflow

#endif // SOCFLOW_COLLECTIVES_REDUCE_HH
