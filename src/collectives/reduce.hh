/**
 * @file
 * Semantic (numerical) side of the collectives: exact reductions over
 * flat parameter/gradient vectors, plus the top-k sparsification used
 * by the HiPress/DGC baseline.
 *
 * Timing and contention of these operations are modeled separately by
 * CollectiveEngine; the math here is what the training replicas
 * actually apply, so convergence behaviour is real.
 */

#ifndef SOCFLOW_COLLECTIVES_REDUCE_HH
#define SOCFLOW_COLLECTIVES_REDUCE_HH

#include <cstddef>
#include <vector>

namespace socflow {
namespace collectives {

/** dst += src (sizes must match). */
void vecAdd(std::vector<float> &dst, const std::vector<float> &src);

/** dst *= alpha. */
void vecScale(std::vector<float> &dst, float alpha);

/** Element-wise mean of all vectors, written back into every vector
 *  (the semantics of an all-reduce-average). */
void allReduceAverage(std::vector<std::vector<float> *> &vectors);

/**
 * Weighted average into `out`: out = sum_i w_i * v_i / sum_i w_i.
 * Sizes must match; weights must not all be zero.
 */
void weightedAverage(const std::vector<const std::vector<float> *> &vs,
                     const std::vector<double> &weights,
                     std::vector<float> &out);

/** A sparse gradient: parallel index/value arrays. */
struct SparseGrad {
    std::vector<std::size_t> indices;
    std::vector<float> values;

    /** Bytes on the wire: 4 bytes value + 4 bytes index each. */
    double
    wireBytes() const
    {
        return 8.0 * static_cast<double>(values.size());
    }
};

/**
 * Deep-Gradient-Compression style top-k selection: keep the `ratio`
 * fraction of entries with the largest magnitude; everything else
 * stays in `residual` for the next iteration (error feedback).
 * @param grad dense gradient; compressed entries are zeroed in the
 *        residual sense (grad itself is not modified).
 * @param residual accumulates the unsent mass; same size as grad.
 */
SparseGrad compressTopK(const std::vector<float> &grad,
                        std::vector<float> &residual, double ratio);

/** Scatter-add a sparse gradient into a dense accumulator. */
void applySparse(const SparseGrad &sparse, std::vector<float> &dense);

} // namespace collectives
} // namespace socflow

#endif // SOCFLOW_COLLECTIVES_REDUCE_HH
