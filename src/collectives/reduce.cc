#include "collectives/reduce.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/hash.hh"
#include "util/logging.hh"

namespace socflow {
namespace collectives {

void
vecAdd(std::vector<float> &dst, const std::vector<float> &src)
{
    SOCFLOW_ASSERT(dst.size() == src.size(), "vecAdd size mismatch");
    for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i] += src[i];
}

void
vecScale(std::vector<float> &dst, float alpha)
{
    for (auto &x : dst)
        x *= alpha;
}

void
allReduceAverage(std::vector<std::vector<float> *> &vectors)
{
    SOCFLOW_ASSERT(!vectors.empty(), "allReduceAverage on empty set");
    const std::size_t n = vectors.front()->size();
    std::vector<float> acc(n, 0.0f);
    for (auto *v : vectors) {
        SOCFLOW_ASSERT(v->size() == n, "vector size mismatch");
        vecAdd(acc, *v);
    }
    vecScale(acc, 1.0f / static_cast<float>(vectors.size()));
    for (auto *v : vectors)
        *v = acc;
}

VerifiedReduceOutcome
verifiedAllReduceAverage(std::vector<std::vector<float> *> &vectors,
                        std::size_t chunk_elems,
                        const std::function<bool()> &corrupt_next,
                        std::size_t max_retries)
{
    SOCFLOW_ASSERT(!vectors.empty(),
                   "verifiedAllReduceAverage on empty set");
    SOCFLOW_ASSERT(chunk_elems > 0, "chunk size must be positive");
    const std::size_t n = vectors.front()->size();

    VerifiedReduceOutcome out;
    std::vector<float> acc(n, 0.0f);
    std::vector<float> wire(chunk_elems);
    for (auto *v : vectors) {
        SOCFLOW_ASSERT(v->size() == n, "vector size mismatch");
        for (std::size_t lo = 0; lo < n; lo += chunk_elems) {
            const std::size_t len = std::min(chunk_elems, n - lo);
            const float *src = v->data() + lo;
            const std::size_t byteLen = len * sizeof(float);
            // The sender tags the chunk with the CRC32 of its
            // payload; the tag travels with the chunk.
            const std::uint32_t tag = crc32(src, byteLen);

            for (std::size_t attempt = 0;; ++attempt) {
                ++out.chunks;
                wire.assign(src, src + len);
                if (corrupt_next && corrupt_next()) {
                    // Transport bit-flip in the arriving copy. The
                    // flipped bit position is immaterial: CRC32
                    // detects every single-bit error.
                    std::uint32_t word;
                    std::memcpy(&word, wire.data(), sizeof(word));
                    word ^= 1u << (attempt % 32);
                    std::memcpy(wire.data(), &word, sizeof(word));
                }
                if (crc32(wire.data(), byteLen) == tag)
                    break;
                ++out.corruptDetected;
                if (attempt >= max_retries) {
                    // Budget exhausted: drop the whole reduction
                    // rather than fold a corrupt chunk into the sum.
                    out.applied = false;
                    return out;
                }
                ++out.retransmitted;
            }
            for (std::size_t i = 0; i < len; ++i)
                acc[lo + i] += wire[i];
        }
    }
    vecScale(acc, 1.0f / static_cast<float>(vectors.size()));
    for (auto *v : vectors)
        *v = acc;
    return out;
}

void
weightedAverage(const std::vector<const std::vector<float> *> &vs,
                const std::vector<double> &weights,
                std::vector<float> &out)
{
    SOCFLOW_ASSERT(!vs.empty() && vs.size() == weights.size(),
                   "weightedAverage arity mismatch");
    double total = 0.0;
    for (double w : weights)
        total += w;
    SOCFLOW_ASSERT(total > 0.0, "weights sum to zero");

    const std::size_t n = vs.front()->size();
    out.assign(n, 0.0f);
    for (std::size_t k = 0; k < vs.size(); ++k) {
        SOCFLOW_ASSERT(vs[k]->size() == n, "vector size mismatch");
        const float w = static_cast<float>(weights[k] / total);
        const auto &v = *vs[k];
        for (std::size_t i = 0; i < n; ++i)
            out[i] += w * v[i];
    }
}

SparseGrad
compressTopK(const std::vector<float> &grad, std::vector<float> &residual,
             double ratio)
{
    SOCFLOW_ASSERT(grad.size() == residual.size(),
                   "residual size mismatch");
    SOCFLOW_ASSERT(ratio > 0.0 && ratio <= 1.0,
                   "compression ratio must be in (0, 1]");

    // Error feedback: compress grad + residual.
    std::vector<float> combined(grad.size());
    for (std::size_t i = 0; i < grad.size(); ++i)
        combined[i] = grad[i] + residual[i];

    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(ratio * static_cast<double>(grad.size()))));

    // nth_element on magnitudes to find the threshold.
    std::vector<std::size_t> order(grad.size());
    for (std::size_t i = 0; i < grad.size(); ++i)
        order[i] = i;
    std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return std::abs(combined[a]) >
                                std::abs(combined[b]);
                     });

    SparseGrad out;
    out.indices.assign(order.begin(), order.begin() + k);
    std::sort(out.indices.begin(), out.indices.end());
    out.values.reserve(k);
    for (std::size_t idx : out.indices)
        out.values.push_back(combined[idx]);

    // Residual keeps the unsent mass; sent entries are cleared.
    residual = std::move(combined);
    for (std::size_t idx : out.indices)
        residual[idx] = 0.0f;
    return out;
}

void
applySparse(const SparseGrad &sparse, std::vector<float> &dense)
{
    for (std::size_t i = 0; i < sparse.indices.size(); ++i) {
        SOCFLOW_ASSERT(sparse.indices[i] < dense.size(),
                       "sparse index out of range");
        dense[sparse.indices[i]] += sparse.values[i];
    }
}

} // namespace collectives
} // namespace socflow
