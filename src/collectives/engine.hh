/**
 * @file
 * Timed collective algorithms over the SoC-Cluster fabric.
 *
 * Each algorithm is expressed as a sequence of synchronized rounds;
 * every round is a set of concurrent point-to-point flows simulated
 * on the cluster's max-min fair network, plus a fixed round overhead
 * (barrier + transfer startup, calibrated in sim/cluster.hh). The
 * engine reports wall-clock, bytes on the wire, and round counts;
 * the numerical effect of the collectives is applied separately by
 * collectives/reduce.hh.
 */

#ifndef SOCFLOW_COLLECTIVES_ENGINE_HH
#define SOCFLOW_COLLECTIVES_ENGINE_HH

#include <cstddef>
#include <vector>

#include "sim/cluster.hh"

namespace socflow {
namespace collectives {

/** Cost summary of one collective operation. */
struct CommStats {
    double seconds = 0.0;
    double wireBytes = 0.0;
    std::size_t rounds = 0;

    CommStats &operator+=(const CommStats &o);
};

/**
 * Evaluates collective communication costs on a cluster.
 */
class CollectiveEngine
{
  public:
    explicit CollectiveEngine(const sim::Cluster &cluster);

    const sim::Cluster &cluster() const { return clusterRef; }

    /**
     * Ring all-reduce over the given SoCs (reduce-scatter +
     * all-gather, 2(N-1) rounds of size/N chunks). A single-member
     * ring costs nothing.
     */
    CommStats ringAllReduce(const std::vector<sim::SocId> &ring,
                            double bytes) const;

    /**
     * Parameter-server exchange: every worker pushes `bytes` to the
     * server, then pulls `bytes` back (two incast/outcast rounds).
     * The server SoC is excluded from the workers automatically.
     */
    CommStats paramServer(const std::vector<sim::SocId> &workers,
                          sim::SocId server, double bytes) const;

    /**
     * Binary-tree aggregate-and-broadcast rooted at nodes[0]:
     * ceil(log2 N) reduce levels up plus the same number of
     * broadcast levels down, full payload per hop.
     */
    CommStats treeAggregate(const std::vector<sim::SocId> &nodes,
                            double bytes) const;

    /** One-to-many broadcast (sequentially pipelined binary tree). */
    CommStats broadcast(sim::SocId root,
                        const std::vector<sim::SocId> &dests,
                        double bytes) const;

    /**
     * Several rings all-reducing *simultaneously* (the unplanned
     * case the CG scheduler avoids): per round, the union of every
     * ring's flows contends on the fabric. Rings shorter than the
     * longest simply finish early.
     */
    CommStats concurrentRings(
        const std::vector<std::vector<sim::SocId>> &rings,
        double bytes) const;

  private:
    /** One synchronized ring round's flow set. */
    std::vector<sim::FlowSpec> ringRoundFlows(
        const std::vector<sim::SocId> &ring, double chunk_bytes) const;

    const sim::Cluster &clusterRef;
};

} // namespace collectives
} // namespace socflow

#endif // SOCFLOW_COLLECTIVES_ENGINE_HH
