/**
 * @file
 * Timed collective algorithms over the SoC-Cluster fabric.
 *
 * Each algorithm is expressed as a sequence of synchronized rounds;
 * every round is a set of concurrent point-to-point flows simulated
 * on the cluster's max-min fair network, plus a fixed round overhead
 * (barrier + transfer startup, calibrated in sim/cluster.hh). The
 * engine reports wall-clock, bytes on the wire, and round counts;
 * the numerical effect of the collectives is applied separately by
 * collectives/reduce.hh.
 *
 * Resilience: an optional fault model (fault/fault.hh) feeds the
 * engine dead SoCs and degraded board NICs. Degraded NICs inflate
 * every flow that crosses them; a sync whose ring contains a dead
 * SoC times out, retries under bounded exponential backoff, and
 * finally falls back to a degraded ring over the survivors
 * (ringAllReduceResilient). The retry/backoff envelope is the
 * SyncPolicy; DESIGN.md "Failure model" documents the contract.
 */

#ifndef SOCFLOW_COLLECTIVES_ENGINE_HH
#define SOCFLOW_COLLECTIVES_ENGINE_HH

#include <cstddef>
#include <vector>

#include "fault/fault.hh"
#include "sim/cluster.hh"

namespace socflow {
namespace collectives {

/** Cost summary of one collective operation. */
struct CommStats {
    double seconds = 0.0;
    double wireBytes = 0.0;
    std::size_t rounds = 0;

    CommStats &operator+=(const CommStats &o);
};

/** Timeout/retry envelope for one synchronization attempt. */
struct SyncPolicy {
    /** Stall charged per failed attempt before it is abandoned. */
    double timeoutS = 0.5;
    /** Retries after the first attempt before degrading the ring. */
    std::size_t maxRetries = 3;
    /** Backoff before the first retry; doubles per retry. */
    double backoffBaseS = 0.05;
    /** Backoff growth per retry. */
    double backoffMultiplier = 2.0;
    /** Backoff ceiling. */
    double backoffMaxS = 1.0;
};

/** Result of one fault-aware synchronization. */
struct SyncOutcome {
    /** Total cost including timeouts, backoff, and the fallback. */
    CommStats stats;
    /** Attempts made (1 when the first try succeeded). */
    std::size_t attempts = 1;
    /** Retries charged (attempts - 1 on the broken ring). */
    std::size_t retries = 0;
    /** True when the ring was shrunk to the survivor set. */
    bool degraded = false;
    /** Members that completed the operation. */
    std::vector<sim::SocId> survivors;
};

/**
 * Evaluates collective communication costs on a cluster.
 */
class CollectiveEngine
{
  public:
    explicit CollectiveEngine(const sim::Cluster &cluster);

    const sim::Cluster &cluster() const { return clusterRef; }

    /**
     * Attach a fault model (not owned; may be nullptr to detach).
     * Degraded-NIC factors then apply to every cost query, and
     * ringAllReduceResilient consults it for dead SoCs.
     */
    void setFaultModel(const fault::FaultModel *model)
    {
        faults = model;
    }

    /** The attached fault model, or nullptr. */
    const fault::FaultModel *faultModel() const { return faults; }

    /** Timeout/retry envelope used by ringAllReduceResilient. */
    void setSyncPolicy(const SyncPolicy &p) { policy = p; }
    const SyncPolicy &syncPolicy() const { return policy; }

    /**
     * Ring all-reduce over the given SoCs (reduce-scatter +
     * all-gather, 2(N-1) rounds of size/N chunks). A single-member
     * ring costs nothing.
     */
    CommStats ringAllReduce(const std::vector<sim::SocId> &ring,
                            double bytes) const;

    /**
     * Parameter-server exchange: every worker pushes `bytes` to the
     * server, then pulls `bytes` back (two incast/outcast rounds).
     * The server SoC is excluded from the workers automatically.
     */
    CommStats paramServer(const std::vector<sim::SocId> &workers,
                          sim::SocId server, double bytes) const;

    /**
     * Binary-tree aggregate-and-broadcast rooted at nodes[0]:
     * ceil(log2 N) reduce levels up plus the same number of
     * broadcast levels down, full payload per hop.
     */
    CommStats treeAggregate(const std::vector<sim::SocId> &nodes,
                            double bytes) const;

    /** One-to-many broadcast (sequentially pipelined binary tree). */
    CommStats broadcast(sim::SocId root,
                        const std::vector<sim::SocId> &dests,
                        double bytes) const;

    /**
     * Several rings all-reducing *simultaneously* (the unplanned
     * case the CG scheduler avoids): per round, the union of every
     * ring's flows contends on the fabric. Rings shorter than the
     * longest simply finish early.
     */
    CommStats concurrentRings(
        const std::vector<std::vector<sim::SocId>> &rings,
        double bytes) const;

    /**
     * Fault-aware ring all-reduce. With every member alive this is
     * exactly ringAllReduce. A ring containing dead members (per the
     * attached fault model, plus the optional `extra_dead` hint from
     * callers that track crashes themselves) first burns the full
     * SyncPolicy envelope -- each attempt stalls for the timeout,
     * then backs off exponentially -- and finally re-forms a
     * degraded ring over the survivors and completes there. A
     * survivor set of <= 1 member completes trivially after the
     * envelope.
     */
    SyncOutcome ringAllReduceResilient(
        const std::vector<sim::SocId> &ring, double bytes,
        const std::vector<sim::SocId> *extra_dead = nullptr) const;

  private:
    /** One synchronized ring round's flow set. */
    std::vector<sim::FlowSpec> ringRoundFlows(
        const std::vector<sim::SocId> &ring, double chunk_bytes) const;

    /**
     * Point-to-point transfer spec with degraded-NIC inflation: an
     * inter-board flow crossing a degraded board NIC has its bytes
     * scaled by the inverse link factor (equivalent, at flow level,
     * to the NIC delivering that fraction of its bandwidth).
     */
    sim::FlowSpec transfer(sim::SocId src, sim::SocId dst,
                           double bytes) const;

    const sim::Cluster &clusterRef;
    const fault::FaultModel *faults = nullptr;
    SyncPolicy policy;
};

} // namespace collectives
} // namespace socflow

#endif // SOCFLOW_COLLECTIVES_ENGINE_HH
