/**
 * @file
 * Timed collective algorithms over the SoC-Cluster fabric.
 *
 * Each algorithm is expressed as a sequence of synchronized rounds;
 * every round is a set of concurrent point-to-point flows simulated
 * on the cluster's max-min fair network, plus a fixed round overhead
 * (barrier + transfer startup, calibrated in sim/cluster.hh). The
 * engine reports wall-clock, bytes on the wire, and round counts;
 * the numerical effect of the collectives is applied separately by
 * collectives/reduce.hh.
 *
 * Resilience: an optional fault model (fault/fault.hh) feeds the
 * engine dead SoCs and degraded board NICs. Degraded NICs inflate
 * every flow that crosses them; a sync whose ring contains a dead
 * SoC times out, retries under bounded exponential backoff, and
 * finally falls back to a degraded ring over the survivors
 * (ringAllReduceResilient). The retry/backoff envelope is the
 * SyncPolicy; DESIGN.md "Failure model" documents the contract.
 *
 * Chunk integrity: every ring segment carries a CRC32 tag per chunk
 * (the numerical verification lives in collectives/reduce.hh). A
 * corrupted chunk is detected at the receiver and re-requested from
 * the predecessor under the SyncPolicy backoff envelope
 * (ringAllReduceChecked); a burst outlasting the retry budget is a
 * *typed* failure (SyncError::CorruptRetryExhausted), never a silent
 * wrong sum. A member dying mid-wave leaves acked chunks valid, so
 * recovery re-runs only the un-acked rounds on the survivor ring
 * (resumeFromChunk) instead of restarting the AllReduce.
 */

#ifndef SOCFLOW_COLLECTIVES_ENGINE_HH
#define SOCFLOW_COLLECTIVES_ENGINE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fault/fault.hh"
#include "sim/cluster.hh"

namespace socflow {
namespace collectives {

/** Cost summary of one collective operation. */
struct CommStats {
    double seconds = 0.0;
    double wireBytes = 0.0;
    std::size_t rounds = 0;

    CommStats &operator+=(const CommStats &o);
};

/**
 * One server endpoint's share of a (sharded) parameter-server
 * exchange: the fan-in it absorbed and when its last push/pull flow
 * drained, taken from the joint max-min solve (so cross-endpoint
 * contention on shared boards/switches is included).
 */
struct EndpointLoad {
    sim::SocId server = 0;
    /** Concurrent worker flows into this endpoint (incast degree). */
    std::size_t fanIn = 0;
    /** Push bytes received across the whole exchange. */
    double pushBytes = 0.0;
    /** Seconds until the last push into this endpoint drained. */
    double pushSeconds = 0.0;
    /** Seconds until the last pull out of this endpoint drained. */
    double pullSeconds = 0.0;
};

/** Result of a parameter-server exchange with per-endpoint detail. */
struct PsExchange {
    CommStats stats;
    /** Parallel to the servers argument. */
    std::vector<EndpointLoad> endpoints;
};

/** Timeout/retry envelope for one synchronization attempt. */
struct SyncPolicy {
    /** Stall charged per failed attempt before it is abandoned. */
    double timeoutS = 0.5;
    /** Retries after the first attempt before degrading the ring. */
    std::size_t maxRetries = 3;
    /** Backoff before the first retry; doubles per retry. */
    double backoffBaseS = 0.05;
    /** Backoff growth per retry. */
    double backoffMultiplier = 2.0;
    /** Backoff ceiling. */
    double backoffMaxS = 1.0;
};

/**
 * Typed failure of a fault-aware synchronization. Everything except
 * None means the sync did NOT complete and no result was applied;
 * callers must take an explicit recovery path (consensus restore,
 * deferred aggregation) rather than trusting partial data.
 */
enum class SyncError {
    None,                   //!< completed (possibly degraded)
    CorruptRetryExhausted,  //!< a chunk stayed corrupt past the budget
};

/** Printable SyncError name. */
const char *syncErrorName(SyncError e);

/** Result of one fault-aware synchronization. */
struct SyncOutcome {
    /** Total cost including timeouts, backoff, and the fallback. */
    CommStats stats;
    /** Attempts made (1 when the first try succeeded). */
    std::size_t attempts = 1;
    /** Retries charged (attempts - 1 on the broken ring). */
    std::size_t retries = 0;
    /** True when the ring was shrunk to the survivor set. */
    bool degraded = false;
    /** Members that completed the operation. */
    std::vector<sim::SocId> survivors;

    // Chunk-level accounting (zero for the coarse-grained paths).
    /** CRC-tagged chunk transfers carried by the operation. */
    std::size_t chunksTotal = 0;
    /** Chunk transfers re-run on the survivor ring after a crash. */
    std::size_t chunksResumed = 0;
    /** Chunks re-requested from the predecessor after a CRC miss. */
    std::size_t chunksRetransmitted = 0;
    /** CRC mismatches observed (includes retransmitted ones). */
    std::size_t corruptDetected = 0;
    /**
     * Members fenced out for carrying a stale group generation
     * (ringAllReduceFenced); their contributions were rejected, never
     * folded into the reduction.
     */
    std::size_t fencedStale = 0;
    /** Typed failure; None when the sync completed. */
    SyncError error = SyncError::None;

    /** True when the sync completed and its result is usable. */
    bool ok() const { return error == SyncError::None; }
};

/**
 * Evaluates collective communication costs on a cluster.
 */
class CollectiveEngine
{
  public:
    explicit CollectiveEngine(const sim::Cluster &cluster);

    const sim::Cluster &cluster() const { return clusterRef; }

    /**
     * Attach a fault model (not owned; may be nullptr to detach).
     * Degraded-NIC factors then apply to every cost query, and
     * ringAllReduceResilient consults it for dead SoCs.
     */
    void setFaultModel(const fault::FaultModel *model)
    {
        faults = model;
    }

    /** The attached fault model, or nullptr. */
    const fault::FaultModel *faultModel() const { return faults; }

    /** Timeout/retry envelope used by ringAllReduceResilient. */
    void setSyncPolicy(const SyncPolicy &p) { policy = p; }
    const SyncPolicy &syncPolicy() const { return policy; }

    /**
     * Ring all-reduce over the given SoCs (reduce-scatter +
     * all-gather, 2(N-1) rounds of size/N chunks). A single-member
     * ring costs nothing.
     */
    CommStats ringAllReduce(const std::vector<sim::SocId> &ring,
                            double bytes) const;

    /**
     * Parameter-server exchange: every worker pushes `bytes` to the
     * server, then pulls `bytes` back (two incast/outcast rounds).
     * The server SoC is excluded from the workers automatically.
     * Evaluated through shardedParamServer with a single endpoint, so
     * the timing is identical to the historical two-round estimate.
     */
    CommStats paramServer(const std::vector<sim::SocId> &workers,
                          sim::SocId server, double bytes) const;

    /**
     * Monolithic exchange with the per-endpoint flow breakdown (the
     * single endpoint's fan-in and drain times) exposed.
     */
    PsExchange paramServerDetailed(
        const std::vector<sim::SocId> &workers, sim::SocId server,
        double bytes) const;

    /**
     * Sharded parameter-server exchange: every worker pushes
     * `push_bytes[i]` to server i (its shard slice), then pulls
     * `pull_bytes[i]` back. Each phase is one joint max-min solve over
     * the union of all flows, so the per-endpoint incast *and* the
     * contention between endpoints sharing boards or switch fabric
     * are priced natively -- a single endpoint reproduces the
     * monolithic collapse, spreading the same bytes across per-board
     * endpoints demonstrably avoids it. Servers are excluded from the
     * worker set automatically; zero-byte endpoints carry no flows.
     *
     * With `replicate_to_next`, every server forwards its aggregate
     * push intake to the next server in the list (chain replication of
     * acked pushes, the sharded PS durability story); the replication
     * flows contend in the push phase.
     */
    PsExchange shardedParamServer(
        const std::vector<sim::SocId> &workers,
        const std::vector<sim::SocId> &servers,
        const std::vector<double> &push_bytes,
        const std::vector<double> &pull_bytes,
        bool replicate_to_next = false) const;

    /**
     * Binary-tree aggregate-and-broadcast rooted at nodes[0]:
     * ceil(log2 N) reduce levels up plus the same number of
     * broadcast levels down, full payload per hop.
     */
    CommStats treeAggregate(const std::vector<sim::SocId> &nodes,
                            double bytes) const;

    /** One-to-many broadcast (sequentially pipelined binary tree). */
    CommStats broadcast(sim::SocId root,
                        const std::vector<sim::SocId> &dests,
                        double bytes) const;

    /**
     * Several rings all-reducing *simultaneously* (the unplanned
     * case the CG scheduler avoids): per round, the union of every
     * ring's flows contends on the fabric. Rings shorter than the
     * longest simply finish early.
     */
    CommStats concurrentRings(
        const std::vector<std::vector<sim::SocId>> &rings,
        double bytes) const;

    /**
     * Rack-hierarchical all-reduce over `members` (DESIGN.md ch. 10).
     * On a single-rack cluster -- or when every member shares one
     * rack -- this is exactly ringAllReduce over the members, so the
     * pre-fleet timing is preserved bit for bit. Otherwise it runs
     * three phases: (1) concurrent per-rack rings over each rack's
     * members reduce locally, (2) a cluster ring over one
     * representative per rack (the lowest member id in the rack)
     * crosses the core, and (3) each representative broadcasts the
     * fleet result back inside its rack; phase 3 charges the slowest
     * rack's broadcast since the racks fan out concurrently on
     * disjoint fabric.
     */
    CommStats hierarchicalAllReduce(
        const std::vector<sim::SocId> &members, double bytes) const;

    /**
     * Fault-aware ring all-reduce. With every member alive this is
     * exactly ringAllReduce. A ring containing dead members (per the
     * attached fault model, plus the optional `extra_dead` hint from
     * callers that track crashes themselves) first burns the full
     * SyncPolicy envelope -- each attempt stalls for the timeout,
     * then backs off exponentially -- and finally re-forms a
     * degraded ring over the survivors and completes there. A
     * survivor set of <= 1 member completes trivially after the
     * envelope.
     */
    SyncOutcome ringAllReduceResilient(
        const std::vector<sim::SocId> &ring, double bytes,
        const std::vector<sim::SocId> *extra_dead = nullptr) const;

    /**
     * Cost of ring rounds [first_round, 2(N-1)) only -- the tail of
     * an all-reduce whose earlier rounds are already acked. A
     * first_round at or past the last round costs nothing.
     */
    CommStats ringAllReduceFrom(const std::vector<sim::SocId> &ring,
                                double bytes,
                                std::size_t first_round) const;

    /**
     * Mid-wave crash recovery: a member of `ring` died after
     * `acked_rounds` of the in-flight all-reduce completed. The
     * acked chunks hold valid partial reductions (their CRC tags
     * verified on arrival), so only the remaining share is re-run on
     * the survivor ring: one detection timeout plus one backoff is
     * charged (membership is known, so no blind retries), then the
     * survivors resume from the equivalent round. Returns the
     * *additional* cost on top of the wave the caller already
     * charged. A survivor set of <= 1 completes trivially.
     */
    SyncOutcome resumeFromChunk(
        const std::vector<sim::SocId> &ring, double bytes,
        std::size_t acked_rounds,
        const std::vector<sim::SocId> *extra_dead = nullptr) const;

    /**
     * CRC-checked ring all-reduce: every chunk transfer is verified
     * at the receiver; `corrupt_chunks` pending corruption events
     * (from fault::FaultInjector::drainGradCorrupt) hit arriving
     * transfers adversarially -- each event corrupts the next
     * transfer of the afflicted chunk, including its retransmissions,
     * so a burst of b costs b retransmits when b <= maxRetries and
     * fails typed (SyncError::CorruptRetryExhausted) once the budget
     * is exhausted. Detected/retransmitted chunks are counted here
     * and in the grad_corrupt_detected_total /
     * chunks_retransmitted_total metrics.
     */
    SyncOutcome ringAllReduceChecked(
        const std::vector<sim::SocId> &ring, double bytes,
        std::size_t corrupt_chunks) const;

    /**
     * Generation-fenced ring all-reduce: every member's contribution
     * carries its group generation (`member_gen`, parallel to `ring`);
     * members stamped older than `current_gen` are fenced -- their
     * data is rejected before the reduction forms, counted in
     * fencedStale and the fenced_stale_msgs_total metric, and the
     * ring re-forms over the admitted members only. This is the
     * split-brain guard: a healed minority replaying pre-partition
     * traffic can never commit into the majority's aggregate. The
     * admitted ring then runs ringAllReduceResilient, so fencing and
     * crash tolerance compose.
     */
    SyncOutcome ringAllReduceFenced(
        const std::vector<sim::SocId> &ring, double bytes,
        const std::vector<std::uint64_t> &member_gen,
        std::uint64_t current_gen) const;

  private:
    /** One synchronized ring round's flow set. */
    std::vector<sim::FlowSpec> ringRoundFlows(
        const std::vector<sim::SocId> &ring, double chunk_bytes) const;

    /**
     * Point-to-point transfer spec with degraded-NIC inflation: an
     * inter-board flow crossing a degraded board NIC has its bytes
     * scaled by the inverse link factor (equivalent, at flow level,
     * to the NIC delivering that fraction of its bandwidth).
     */
    sim::FlowSpec transfer(sim::SocId src, sim::SocId dst,
                           double bytes) const;

    const sim::Cluster &clusterRef;
    const fault::FaultModel *faults = nullptr;
    SyncPolicy policy;
};

} // namespace collectives
} // namespace socflow

#endif // SOCFLOW_COLLECTIVES_ENGINE_HH
