#include "collectives/engine.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace socflow {
namespace collectives {

namespace {

/**
 * Per-operation accounting: how often each collective is evaluated,
 * what it puts on the wire, and its cost distribution. References
 * are cached so the hot path is three atomic updates. Skipped while
 * a flow capture is armed (`captured`): attribution replays of
 * already-priced collectives must not double-count.
 */
void
recordCollective(const char *op, const CommStats &stats,
                 bool captured = false)
{
    if (captured)
        return;
    struct OpMetrics {
        obs::Counter &ops;
        obs::Counter &wireBytes;
        obs::Histogram &seconds;
        obs::TDigest &secondsDigest;
        explicit OpMetrics(const char *op_name)
            : ops(obs::metrics().counter("collective_ops_total",
                                         {{"op", op_name}})),
              wireBytes(obs::metrics().counter(
                  "collective_wire_bytes_total", {{"op", op_name}})),
              seconds(obs::metrics().histogram(
                  "collective_seconds", {{"op", op_name}})),
              secondsDigest(obs::metrics().tdigest(
                  "collective_seconds_digest", {{"op", op_name}}))
        {
        }
    };
    static OpMetrics ring("ring"), ps("param_server"), tree("tree"),
        bcast("broadcast"), concurrent("concurrent_rings"),
        hier("hierarchical"), shardedPs("sharded_ps");
    OpMetrics *m = nullptr;
    switch (op[0]) {
      case 'r':
        m = &ring;
        break;
      case 'p':
        m = &ps;
        break;
      case 's':
        m = &shardedPs;
        break;
      case 't':
        m = &tree;
        break;
      case 'b':
        m = &bcast;
        break;
      case 'h':
        m = &hier;
        break;
      default:
        m = &concurrent;
        break;
    }
    m->ops.add(1.0);
    m->wireBytes.add(stats.wireBytes);
    m->seconds.observe(stats.seconds);
    m->secondsDigest.observe(stats.seconds);
}

/**
 * Chunk-integrity accounting shared by the checked and resume paths.
 */
struct ChunkMetrics {
    obs::Counter &corruptDetected;
    obs::Counter &retransmitted;
    obs::Counter &resumed;
    obs::Counter &syncFailures;
    ChunkMetrics()
        : corruptDetected(
              obs::metrics().counter("grad_corrupt_detected_total")),
          retransmitted(
              obs::metrics().counter("chunks_retransmitted_total")),
          resumed(obs::metrics().counter("chunks_resumed_total")),
          syncFailures(obs::metrics().counter(
              "collective_sync_failures_total",
              {{"reason", "corrupt_retry_exhausted"}}))
    {
    }
};

ChunkMetrics &
chunkMetrics()
{
    static ChunkMetrics m;
    return m;
}

} // namespace

const char *
syncErrorName(SyncError e)
{
    switch (e) {
      case SyncError::None:
        return "none";
      case SyncError::CorruptRetryExhausted:
        return "corrupt-retry-exhausted";
    }
    panic("unknown sync error");
}

CommStats &
CommStats::operator+=(const CommStats &o)
{
    seconds += o.seconds;
    wireBytes += o.wireBytes;
    rounds += o.rounds;
    return *this;
}

CollectiveEngine::CollectiveEngine(const sim::Cluster &cluster)
    : clusterRef(cluster)
{
}

sim::FlowSpec
CollectiveEngine::transfer(sim::SocId src, sim::SocId dst,
                           double bytes) const
{
    sim::FlowSpec f = clusterRef.transfer(src, dst, bytes);
    if (faults) {
        const sim::BoardId bs = clusterRef.board(src);
        const sim::BoardId bd = clusterRef.board(dst);
        if (bs != bd) {
            const double lf = std::min(faults->linkFactor(bs),
                                       faults->linkFactor(bd));
            if (lf > 0.0 && lf < 1.0)
                f.bytes /= lf;
        }
    }
    return f;
}

std::vector<sim::FlowSpec>
CollectiveEngine::ringRoundFlows(const std::vector<sim::SocId> &ring,
                                 double chunk_bytes) const
{
    std::vector<sim::FlowSpec> flows;
    flows.reserve(ring.size());
    for (std::size_t i = 0; i < ring.size(); ++i) {
        const sim::SocId src = ring[i];
        const sim::SocId dst = ring[(i + 1) % ring.size()];
        flows.push_back(transfer(src, dst, chunk_bytes));
    }
    return flows;
}

CommStats
CollectiveEngine::ringAllReduce(const std::vector<sim::SocId> &ring,
                                double bytes) const
{
    CommStats stats;
    const std::size_t n = ring.size();
    if (n <= 1 || bytes <= 0.0)
        return stats;

    const double chunk = bytes / static_cast<double>(n);
    const std::size_t rounds = 2 * (n - 1);
    const double roundTime =
        clusterRef.network().makespan(ringRoundFlows(ring, chunk)) +
        clusterRef.roundOverheadS(n);

    stats.seconds = roundTime * static_cast<double>(rounds);
    stats.wireBytes =
        chunk * static_cast<double>(n) * static_cast<double>(rounds);
    stats.rounds = rounds;
    recordCollective("ring", stats, clusterRef.network().captureActive());
    return stats;
}

CommStats
CollectiveEngine::paramServer(const std::vector<sim::SocId> &workers,
                              sim::SocId server, double bytes) const
{
    CommStats stats;
    std::vector<sim::SocId> clients;
    for (sim::SocId w : workers)
        if (w != server)
            clients.push_back(w);
    if (clients.empty() || bytes <= 0.0)
        return stats;

    std::vector<sim::FlowSpec> push, pull;
    for (sim::SocId c : clients) {
        push.push_back(transfer(c, server, bytes));
        pull.push_back(transfer(server, c, bytes));
    }
    const double overhead =
        clusterRef.roundOverheadS(clients.size() + 1);
    stats.seconds = clusterRef.network().makespan(push) + overhead +
                    clusterRef.network().makespan(pull) + overhead;
    stats.wireBytes = 2.0 * bytes * static_cast<double>(clients.size());
    stats.rounds = 2;
    recordCollective("param_server", stats, clusterRef.network().captureActive());
    return stats;
}

PsExchange
CollectiveEngine::paramServerDetailed(
    const std::vector<sim::SocId> &workers, sim::SocId server,
    double bytes) const
{
    return shardedParamServer(workers, {server}, {bytes}, {bytes},
                              false);
}

PsExchange
CollectiveEngine::shardedParamServer(
    const std::vector<sim::SocId> &workers,
    const std::vector<sim::SocId> &servers,
    const std::vector<double> &push_bytes,
    const std::vector<double> &pull_bytes,
    bool replicate_to_next) const
{
    PsExchange ex;
    const std::size_t nServers = servers.size();
    if (nServers == 0)
        return ex;
    if (push_bytes.size() != nServers ||
        pull_bytes.size() != nServers) {
        fatal("sharded param-server needs one push/pull payload per ",
              "server: ", push_bytes.size(), "/", pull_bytes.size(),
              " payloads for ", nServers, " servers");
    }

    ex.endpoints.resize(nServers);
    for (std::size_t s = 0; s < nServers; ++s)
        ex.endpoints[s].server = servers[s];

    std::vector<sim::SocId> clients;
    for (sim::SocId w : workers) {
        if (std::find(servers.begin(), servers.end(), w) ==
            servers.end())
            clients.push_back(w);
    }
    double totalPush = 0.0;
    double totalPull = 0.0;
    for (std::size_t s = 0; s < nServers; ++s) {
        totalPush += std::max(push_bytes[s], 0.0);
        totalPull += std::max(pull_bytes[s], 0.0);
    }
    if (clients.empty() || totalPush + totalPull <= 0.0)
        return ex;

    // Push phase. Client-major, server-minor flow order: a single
    // endpoint builds exactly the flow list paramServer() solves, so
    // the monolithic timings agree bit-for-bit.
    std::vector<sim::FlowSpec> push;
    std::vector<std::size_t> owner;
    for (sim::SocId c : clients) {
        for (std::size_t s = 0; s < nServers; ++s) {
            if (push_bytes[s] <= 0.0)
                continue;
            push.push_back(transfer(c, servers[s], push_bytes[s]));
            owner.push_back(s);
        }
    }
    // Chain replication: each endpoint forwards its aggregate intake
    // to its successor inside the same max-min solve, so durability
    // traffic contends with the incast it protects. Replication flows
    // count toward the phase span but not toward any endpoint's drain
    // attribution (owner = nServers sentinel): EndpointLoad measures
    // client incast, the signal hot-shard rebalancing acts on.
    if (replicate_to_next && nServers > 1) {
        for (std::size_t s = 0; s < nServers; ++s) {
            const double agg = push_bytes[s] *
                               static_cast<double>(clients.size());
            if (agg <= 0.0)
                continue;
            push.push_back(transfer(servers[s],
                                    servers[(s + 1) % nServers], agg));
            owner.push_back(nServers);
        }
    }
    double pushSpan = 0.0;
    if (!push.empty()) {
        const auto res = clusterRef.network().simulate(push);
        for (std::size_t i = 0; i < res.size(); ++i) {
            pushSpan = std::max(pushSpan, res[i].finishS);
            if (owner[i] >= nServers)
                continue;
            EndpointLoad &ep = ex.endpoints[owner[i]];
            ep.pushSeconds = std::max(ep.pushSeconds, res[i].finishS);
        }
    }

    // Pull phase, same joint-solve treatment in the other direction.
    std::vector<sim::FlowSpec> pull;
    owner.clear();
    for (sim::SocId c : clients) {
        for (std::size_t s = 0; s < nServers; ++s) {
            if (pull_bytes[s] <= 0.0)
                continue;
            pull.push_back(transfer(servers[s], c, pull_bytes[s]));
            owner.push_back(s);
        }
    }
    double pullSpan = 0.0;
    if (!pull.empty()) {
        const auto res = clusterRef.network().simulate(pull);
        for (std::size_t i = 0; i < res.size(); ++i) {
            pullSpan = std::max(pullSpan, res[i].finishS);
            EndpointLoad &ep = ex.endpoints[owner[i]];
            ep.pullSeconds = std::max(ep.pullSeconds, res[i].finishS);
        }
    }

    for (std::size_t s = 0; s < nServers; ++s) {
        if (push_bytes[s] > 0.0) {
            ex.endpoints[s].fanIn = clients.size();
            ex.endpoints[s].pushBytes =
                push_bytes[s] * static_cast<double>(clients.size());
        }
    }

    const double overhead =
        clusterRef.roundOverheadS(clients.size() + nServers);
    ex.stats.seconds = pushSpan + overhead + pullSpan + overhead;
    ex.stats.wireBytes = static_cast<double>(clients.size()) *
                         (totalPush + totalPull);
    if (replicate_to_next && nServers > 1)
        ex.stats.wireBytes +=
            static_cast<double>(clients.size()) * totalPush;
    ex.stats.rounds = 2;
    recordCollective("sharded_ps", ex.stats, clusterRef.network().captureActive());
    return ex;
}

CommStats
CollectiveEngine::treeAggregate(const std::vector<sim::SocId> &nodes,
                                double bytes) const
{
    CommStats stats;
    const std::size_t n = nodes.size();
    if (n <= 1 || bytes <= 0.0)
        return stats;

    // Reduce levels: pair (i, i + stride) sends child -> parent.
    for (std::size_t stride = 1; stride < n; stride *= 2) {
        std::vector<sim::FlowSpec> flows;
        for (std::size_t i = 0; i + stride < n; i += 2 * stride) {
            flows.push_back(
                transfer(nodes[i + stride], nodes[i], bytes));
        }
        if (flows.empty())
            continue;
        stats.seconds += clusterRef.network().makespan(flows) +
                         clusterRef.roundOverheadS(2 * flows.size());
        stats.wireBytes += bytes * static_cast<double>(flows.size());
        ++stats.rounds;
    }
    // Broadcast levels mirror the reduce levels, downward.
    std::vector<std::size_t> strides;
    for (std::size_t stride = 1; stride < n; stride *= 2)
        strides.push_back(stride);
    for (auto it = strides.rbegin(); it != strides.rend(); ++it) {
        std::vector<sim::FlowSpec> flows;
        for (std::size_t i = 0; i + *it < n; i += 2 * (*it)) {
            flows.push_back(
                transfer(nodes[i], nodes[i + *it], bytes));
        }
        if (flows.empty())
            continue;
        stats.seconds += clusterRef.network().makespan(flows) +
                         clusterRef.roundOverheadS(2 * flows.size());
        stats.wireBytes += bytes * static_cast<double>(flows.size());
        ++stats.rounds;
    }
    recordCollective("tree", stats, clusterRef.network().captureActive());
    return stats;
}

CommStats
CollectiveEngine::broadcast(sim::SocId root,
                            const std::vector<sim::SocId> &dests,
                            double bytes) const
{
    CommStats stats;
    std::vector<sim::SocId> nodes{root};
    for (sim::SocId d : dests)
        if (d != root)
            nodes.push_back(d);
    if (nodes.size() <= 1 || bytes <= 0.0)
        return stats;

    // Binary-tree broadcast: at each level every holder forwards to
    // one new node.
    std::size_t holders = 1;
    while (holders < nodes.size()) {
        std::vector<sim::FlowSpec> flows;
        const std::size_t sends =
            std::min(holders, nodes.size() - holders);
        for (std::size_t i = 0; i < sends; ++i) {
            flows.push_back(
                transfer(nodes[i], nodes[holders + i], bytes));
        }
        stats.seconds += clusterRef.network().makespan(flows) +
                         clusterRef.roundOverheadS(2 * sends);
        stats.wireBytes += bytes * static_cast<double>(sends);
        ++stats.rounds;
        holders += sends;
    }
    recordCollective("broadcast", stats, clusterRef.network().captureActive());
    return stats;
}

CommStats
CollectiveEngine::concurrentRings(
    const std::vector<std::vector<sim::SocId>> &rings, double bytes) const
{
    CommStats stats;
    std::size_t maxRounds = 0;
    std::size_t maxParticipants = 0;
    for (const auto &ring : rings) {
        if (ring.size() > 1) {
            maxRounds = std::max(maxRounds, 2 * (ring.size() - 1));
            maxParticipants = std::max(maxParticipants, ring.size());
        }
    }
    if (maxRounds == 0 || bytes <= 0.0)
        return stats;

    for (std::size_t round = 0; round < maxRounds; ++round) {
        std::vector<sim::FlowSpec> flows;
        for (const auto &ring : rings) {
            if (ring.size() <= 1)
                continue;
            if (round >= 2 * (ring.size() - 1))
                continue;  // this ring already finished
            const double chunk =
                bytes / static_cast<double>(ring.size());
            auto ringFlows = ringRoundFlows(ring, chunk);
            flows.insert(flows.end(), ringFlows.begin(),
                         ringFlows.end());
            stats.wireBytes +=
                chunk * static_cast<double>(ring.size());
        }
        stats.seconds += clusterRef.network().makespan(flows) +
                         clusterRef.roundOverheadS(maxParticipants);
        ++stats.rounds;
    }
    recordCollective("concurrent_rings", stats, clusterRef.network().captureActive());
    return stats;
}

CommStats
CollectiveEngine::hierarchicalAllReduce(
    const std::vector<sim::SocId> &members, double bytes) const
{
    CommStats stats;
    if (members.size() <= 1 || bytes <= 0.0)
        return stats;

    // Bucket the members by rack in ascending id order, so the rack
    // representative (front of each bucket) is the lowest member id
    // regardless of the caller's ordering.
    std::vector<sim::SocId> sorted(members);
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::vector<sim::SocId>> byRack(clusterRef.numRacks());
    for (sim::SocId m : sorted)
        byRack[clusterRef.rack(m)].push_back(m);
    std::size_t racksTouched = 0;
    for (const auto &r : byRack)
        if (!r.empty())
            ++racksTouched;
    if (racksTouched <= 1)
        return ringAllReduce(sorted, bytes);

    // Phase 1: every rack with >= 2 members reduces locally; the
    // rings run concurrently but touch disjoint rack fabric.
    std::vector<std::vector<sim::SocId>> rings;
    for (const auto &r : byRack)
        if (r.size() > 1)
            rings.push_back(r);
    if (!rings.empty())
        stats += concurrentRings(rings, bytes);

    // Phase 2: one representative per touched rack crosses the core.
    std::vector<sim::SocId> reps;
    for (const auto &r : byRack)
        if (!r.empty())
            reps.push_back(r.front());
    stats += ringAllReduce(reps, bytes);

    // Phase 3: representatives fan the fleet result back out inside
    // their racks. The broadcasts use disjoint fabric, so wall clock
    // is the slowest rack's; bytes accumulate across all of them.
    CommStats fanout;
    for (const auto &r : byRack) {
        if (r.size() <= 1)
            continue;
        const std::vector<sim::SocId> dests(r.begin() + 1, r.end());
        const CommStats b = broadcast(r.front(), dests, bytes);
        fanout.seconds = std::max(fanout.seconds, b.seconds);
        fanout.rounds = std::max(fanout.rounds, b.rounds);
        fanout.wireBytes += b.wireBytes;
    }
    stats += fanout;
    recordCollective("hierarchical", stats, clusterRef.network().captureActive());
    return stats;
}

CommStats
CollectiveEngine::ringAllReduceFrom(const std::vector<sim::SocId> &ring,
                                    double bytes,
                                    std::size_t first_round) const
{
    CommStats stats;
    const std::size_t n = ring.size();
    if (n <= 1 || bytes <= 0.0)
        return stats;
    const std::size_t totalRounds = 2 * (n - 1);
    if (first_round >= totalRounds)
        return stats;

    const double chunk = bytes / static_cast<double>(n);
    const std::size_t rounds = totalRounds - first_round;
    const double roundTime =
        clusterRef.network().makespan(ringRoundFlows(ring, chunk)) +
        clusterRef.roundOverheadS(n);

    stats.seconds = roundTime * static_cast<double>(rounds);
    stats.wireBytes =
        chunk * static_cast<double>(n) * static_cast<double>(rounds);
    stats.rounds = rounds;
    recordCollective("ring", stats, clusterRef.network().captureActive());
    return stats;
}

SyncOutcome
CollectiveEngine::resumeFromChunk(
    const std::vector<sim::SocId> &ring, double bytes,
    std::size_t acked_rounds,
    const std::vector<sim::SocId> *extra_dead) const
{
    const auto isDead = [&](sim::SocId s) {
        if (faults && !faults->socAlive(s))
            return true;
        return extra_dead &&
               std::find(extra_dead->begin(), extra_dead->end(), s) !=
                   extra_dead->end();
    };

    SyncOutcome out;
    out.survivors.reserve(ring.size());
    for (sim::SocId s : ring)
        if (!isDead(s))
            out.survivors.push_back(s);

    const std::size_t n = ring.size();
    if (n <= 1 || bytes <= 0.0)
        return out;
    const std::size_t totalRounds = 2 * (n - 1);
    out.chunksTotal = n * totalRounds;

    if (out.survivors.size() == ring.size()) {
        // Nobody died after all: just finish the in-flight rounds.
        out.stats = ringAllReduceFrom(ring, bytes, acked_rounds);
        return out;
    }

    // The successor of the dead member times out once waiting for its
    // chunk; membership is known from the fault model, so the
    // survivor ring re-forms after a single backoff -- no blind
    // retries (this is the latency the chunk resume saves over the
    // full envelope of ringAllReduceResilient).
    static obs::Counter &timeouts =
        obs::metrics().counter("collective_timeouts_total");
    out.attempts = 2;
    out.retries = 1;
    out.degraded = true;
    out.stats.seconds += policy.timeoutS + policy.backoffBaseS;
    timeouts.add(1.0);

    // Resume at the equivalent progress on the survivor ring: the
    // acked fraction of the payload is already reduced and its CRC
    // tags verified, so only the remaining rounds re-run.
    const std::size_t m = out.survivors.size();
    if (m > 1) {
        const std::size_t survRounds = 2 * (m - 1);
        const std::size_t resumeRound = std::min(
            survRounds,
            (acked_rounds * survRounds) / totalRounds);
        out.stats += ringAllReduceFrom(out.survivors, bytes,
                                       resumeRound);
        out.chunksResumed = m * (survRounds - resumeRound);
        chunkMetrics().resumed.add(
            static_cast<double>(out.chunksResumed));
    }
    return out;
}

SyncOutcome
CollectiveEngine::ringAllReduceChecked(
    const std::vector<sim::SocId> &ring, double bytes,
    std::size_t corrupt_chunks) const
{
    SyncOutcome out;
    out.survivors = ring;
    out.stats = ringAllReduce(ring, bytes);
    const std::size_t n = ring.size();
    if (n <= 1 || bytes <= 0.0)
        return out;
    out.chunksTotal = n * 2 * (n - 1);
    if (corrupt_chunks == 0)
        return out;

    ChunkMetrics &cm = chunkMetrics();
    // Adversarial burst model: every corruption event hits the next
    // arriving transfer of the same afflicted chunk, so the first
    // corrupted chunk absorbs the whole burst. b <= maxRetries
    // resolves after b retransmissions; anything longer exhausts the
    // budget and fails typed.
    out.corruptDetected = std::min(
        corrupt_chunks, policy.maxRetries + 1);
    const bool exhausted = corrupt_chunks > policy.maxRetries;
    out.chunksRetransmitted =
        exhausted ? policy.maxRetries : corrupt_chunks;
    cm.corruptDetected.add(static_cast<double>(out.corruptDetected));
    cm.retransmitted.add(
        static_cast<double>(out.chunksRetransmitted));

    // Each retransmission re-requests the chunk from the predecessor
    // on the afflicted segment and backs off per the SyncPolicy.
    const double chunk = bytes / static_cast<double>(n);
    const double hop =
        clusterRef.network().makespan(
            {transfer(ring[0], ring[1], chunk)}) +
        clusterRef.roundOverheadS(2);
    double backoff = policy.backoffBaseS;
    for (std::size_t r = 0; r < out.chunksRetransmitted; ++r) {
        out.stats.seconds += hop + backoff;
        out.stats.wireBytes += chunk;
        ++out.stats.rounds;
        backoff = std::min(backoff * policy.backoffMultiplier,
                           policy.backoffMaxS);
    }
    out.retries = out.chunksRetransmitted;
    out.attempts = 1 + out.retries;

    if (exhausted) {
        out.error = SyncError::CorruptRetryExhausted;
        cm.syncFailures.add(1.0);
    }
    return out;
}

SyncOutcome
CollectiveEngine::ringAllReduceResilient(
    const std::vector<sim::SocId> &ring, double bytes,
    const std::vector<sim::SocId> *extra_dead) const
{
    const auto isDead = [&](sim::SocId s) {
        if (faults && !faults->socAlive(s))
            return true;
        return extra_dead &&
               std::find(extra_dead->begin(), extra_dead->end(), s) !=
                   extra_dead->end();
    };

    SyncOutcome out;
    out.survivors.reserve(ring.size());
    for (sim::SocId s : ring)
        if (!isDead(s))
            out.survivors.push_back(s);

    if (out.survivors.size() == ring.size()) {
        out.stats = ringAllReduce(ring, bytes);
        return out;
    }

    // A dead member never answers: every attempt stalls for the full
    // timeout, then backs off before the retry. Crashes are permanent
    // at this granularity, so the envelope is always exhausted before
    // the ring is shrunk; timed-out attempts put no accounted bytes
    // on the wire (the partial chunks are discarded).
    static obs::Counter &timeouts =
        obs::metrics().counter("collective_timeouts_total");
    static obs::Counter &retries =
        obs::metrics().counter("collective_retries_total");
    static obs::Counter &degradedOps =
        obs::metrics().counter("collective_degraded_total");

    double backoff = policy.backoffBaseS;
    out.attempts = policy.maxRetries + 1;
    out.retries = policy.maxRetries;
    for (std::size_t a = 0; a <= policy.maxRetries; ++a) {
        out.stats.seconds += policy.timeoutS;
        if (a < policy.maxRetries) {
            out.stats.seconds += backoff;
            backoff = std::min(backoff * policy.backoffMultiplier,
                               policy.backoffMaxS);
        }
    }
    timeouts.add(static_cast<double>(out.attempts));
    retries.add(static_cast<double>(out.retries));
    degradedOps.add(1.0);

    out.degraded = true;
    out.stats += ringAllReduce(out.survivors, bytes);
    return out;
}

SyncOutcome
CollectiveEngine::ringAllReduceFenced(
    const std::vector<sim::SocId> &ring, double bytes,
    const std::vector<std::uint64_t> &member_gen,
    std::uint64_t current_gen) const
{
    if (member_gen.size() != ring.size())
        fatal("fenced all-reduce needs one generation stamp per ",
              "member: ", member_gen.size(), " stamps for ",
              ring.size(), " members");

    // Fence before the ring forms: a stale-generation contribution is
    // rejected at admission, so no partial reduction ever contains it.
    std::vector<sim::SocId> admitted;
    admitted.reserve(ring.size());
    std::size_t fenced = 0;
    for (std::size_t i = 0; i < ring.size(); ++i) {
        if (member_gen[i] >= current_gen)
            admitted.push_back(ring[i]);
        else
            ++fenced;
    }
    if (fenced > 0) {
        static obs::Counter &fencedMsgs =
            obs::metrics().counter("fenced_stale_msgs_total");
        fencedMsgs.add(static_cast<double>(fenced));
    }

    SyncOutcome out = ringAllReduceResilient(admitted, bytes);
    out.fencedStale = fenced;
    if (fenced > 0)
        out.degraded = true;
    return out;
}

} // namespace collectives
} // namespace socflow
