/**
 * @file
 * The per-batch exactly-synchronized baselines: Parameter Server,
 * Ring-AllReduce (Horovod-style), HiPress (DGC gradient compression),
 * and 2D parallelism (pipeline-in-group x data-parallel-across).
 *
 * All four apply the same global-batch SGD math (so their convergence
 * accuracy matches, as in the paper's Table 3); HiPress additionally
 * sparsifies gradients with error feedback. They differ in the timing
 * model of each step's synchronization, evaluated on the simulated
 * SoC-Cluster fabric.
 */

#ifndef SOCFLOW_BASELINES_EXACT_SYNC_HH
#define SOCFLOW_BASELINES_EXACT_SYNC_HH

#include <memory>
#include <vector>

#include "baselines/common.hh"
#include "collectives/engine.hh"
#include "core/train_common.hh"
#include "data/dataset.hh"
#include "nn/zoo.hh"
#include "quant/int8_trainer.hh"
#include "sim/calibration.hh"
#include "sim/energy.hh"

namespace socflow {
namespace baselines {

/**
 * Base class: one global model replica, per-batch full-batch SGD;
 * subclasses provide the synchronization cost and may transform the
 * gradient (HiPress).
 */
class ExactSyncTrainer : public core::DistTrainer
{
  public:
    ExactSyncTrainer(BaselineConfig config,
                     const data::DataBundle &bundle,
                     const std::vector<float> *initial = nullptr);

    core::EpochRecord runEpoch() override;
    double testAccuracy() override;

    /** Post-training weights (e.g. for transfer learning). */
    std::vector<float> weights() { return model.flatParams(); }

  protected:
    /** Per-batch synchronization seconds (topology-dependent). */
    virtual double syncSecondsPerBatch() const = 0;

    /** Per-batch compute seconds across the data-parallel SoCs. */
    virtual double computeSecondsPerBatch(std::size_t samples) const;

    /** Whether sync overlaps the next batch's compute. */
    virtual bool overlapsCompute() const { return true; }

    /** Hook: transform gradients before the optimizer step. */
    virtual void transformGradients() {}

    BaselineConfig cfg;
    const data::DataBundle &bundle;
    const sim::ModelProfile &profile;
    sim::Cluster cluster;
    collectives::CollectiveEngine engine;
    sim::ComputeModel compute;
    nn::Model model;
    std::unique_ptr<nn::Sgd> sgd;
    Rng rng;

    mutable double cachedSyncS = -1.0;

  private:
    /** Simulated-timeline cursor for trace spans (paper-scale s). */
    double simClockS = 0.0;
};

/** Parameter Server: full-gradient push/pull to one server SoC. */
class PsTrainer : public ExactSyncTrainer
{
  public:
    using ExactSyncTrainer::ExactSyncTrainer;
    std::string methodName() const override { return "PS"; }

  protected:
    double syncSecondsPerBatch() const override;
    bool overlapsCompute() const override { return false; }
};

/** Ring-AllReduce over every SoC (Horovod workflow). */
class RingTrainer : public ExactSyncTrainer
{
  public:
    using ExactSyncTrainer::ExactSyncTrainer;
    std::string methodName() const override { return "RING"; }

  protected:
    double syncSecondsPerBatch() const override;
};

/** HiPress: DGC top-k sparsification with error feedback. */
class HiPressTrainer : public ExactSyncTrainer
{
  public:
    HiPressTrainer(BaselineConfig config, const data::DataBundle &bundle,
                   const std::vector<float> *initial = nullptr);
    std::string methodName() const override { return "HiPress"; }

  protected:
    double syncSecondsPerBatch() const override;
    double computeSecondsPerBatch(std::size_t samples) const override;
    void transformGradients() override;

  private:
    std::vector<float> residual;
};

/**
 * 2D parallelism: pipeline parallelism inside fixed-size groups
 * (PipeDream-style stages), ring data parallelism across groups.
 */
class TwoDParTrainer : public ExactSyncTrainer
{
  public:
    using ExactSyncTrainer::ExactSyncTrainer;
    std::string methodName() const override { return "2D-Paral"; }

  protected:
    double syncSecondsPerBatch() const override;
    double computeSecondsPerBatch(std::size_t samples) const override;
};

} // namespace baselines
} // namespace socflow

#endif // SOCFLOW_BASELINES_EXACT_SYNC_HH
