#include "baselines/local.hh"

#include <algorithm>
#include <cmath>

#include "baselines/exact_sync.hh"
#include "baselines/fedavg.hh"
#include "baselines/ssp.hh"
#include "tensor/ops.hh"
#include "sim/energy.hh"
#include "util/logging.hh"

namespace socflow {
namespace baselines {

namespace {

nn::Model
buildInitialModel(const BaselineConfig &cfg, const data::DataBundle &b,
                  const std::vector<float> *initial)
{
    Rng init_rng(cfg.seed ^ 0xbeef);
    nn::Model m = nn::buildModel(cfg.modelFamily, b.spec, init_rng);
    if (initial)
        m.setFlatParams(*initial);
    return m;
}

} // namespace

LocalTrainer::LocalTrainer(BaselineConfig config,
                           const data::DataBundle &bundle_in,
                           sim::Device device_in,
                           const std::vector<float> *initial)
    : cfg(std::move(config)), bundle(bundle_in),
      profile(sim::modelProfile(cfg.modelFamily)), device(device_in),
      compute(), model(buildInitialModel(cfg, bundle_in, initial)),
      rng(cfg.seed)
{
    if (device == sim::Device::SocNpu) {
        int8 = std::make_unique<quant::Int8Trainer>(
            model, cfg.sgd, quant::QuantConfig{}, cfg.seed ^ 0x1117);
    } else {
        sgd = std::make_unique<nn::Sgd>(model, cfg.sgd);
    }
}

std::string
LocalTrainer::methodName() const
{
    switch (device) {
      case sim::Device::SocCpu:
        return "Local-CPU";
      case sim::Device::SocNpu:
        return "Local-NPU";
      case sim::Device::GpuV100:
        return "V100";
      case sim::Device::GpuA100:
        return "A100";
    }
    panic("unknown device");
}

core::EpochRecord
LocalTrainer::runEpoch()
{
    core::EpochRecord rec;
    sim::EnergyMeter meter;

    data::BatchIterator it(bundle.train.size(), cfg.globalBatch,
                           rng.split());
    double lossSum = 0.0, accSum = 0.0;
    std::size_t sampleSum = 0;

    while (!it.epochDone()) {
        const auto idx = it.next();
        auto [x, y] = bundle.train.batch(idx);
        nn::StepResult r;
        if (int8) {
            r = int8->trainStep(x, y);
        } else {
            model.zeroGrad();
            r = model.trainStep(x, y);
            sgd->step();
        }
        lossSum += r.loss * static_cast<double>(r.samples);
        accSum += r.accuracy * static_cast<double>(r.samples);
        sampleSum += r.samples;

        const double stepS =
            compute.batchSeconds(profile, device, idx.size());
        const double updS = compute.updateSeconds(profile);
        rec.computeSeconds += stepS;
        rec.updateSeconds += updS;
        rec.simSeconds += stepS + updS;

        const sim::PowerState state =
            device == sim::Device::SocCpu   ? sim::PowerState::CpuTrain
            : device == sim::Device::SocNpu ? sim::PowerState::NpuTrain
                                            : sim::PowerState::GpuTrain;
        // The device stays at training power through the optimizer
        // update as well.
        meter.accumulate(state, stepS + updS, 1, device);
    }

    // Replicate per-step timing/energy to the paper-scale dataset.
    const double f = bundle.timeScale();
    rec.computeSeconds *= f;
    rec.updateSeconds *= f;
    rec.simSeconds *= f;
    rec.energyJoules = meter.totalJoules() * f;
    rec.trainLoss = sampleSum ? lossSum / sampleSum : 0.0;
    rec.trainAcc = sampleSum ? accSum / sampleSum : 0.0;
    if (sgd)
        sgd->decayLearningRate();
    else
        int8->optimizer().decayLearningRate();
    return rec;
}

double
LocalTrainer::testAccuracy()
{
    const auto &test = bundle.test;
    const std::size_t chunk = 256;
    std::size_t correct = 0;
    for (std::size_t start = 0; start < test.size(); start += chunk) {
        std::vector<std::size_t> idx;
        for (std::size_t i = start;
             i < std::min(test.size(), start + chunk); ++i)
            idx.push_back(i);
        auto [x, y] = test.batch(idx);
        nn::StepResult r;
        if (int8) {
            // Evaluate under quantized weights (what the NPU serves).
            tensor::Tensor logits = int8->logits(x);
            const auto preds = tensor::argmaxRows(logits);
            std::size_t ok = 0;
            for (std::size_t i = 0; i < y.size(); ++i)
                ok += preds[i] == y[i] ? 1 : 0;
            correct += ok;
            continue;
        }
        r = model.evaluate(x, y);
        correct += static_cast<std::size_t>(
            std::lround(r.accuracy * static_cast<double>(r.samples)));
    }
    return static_cast<double>(correct) /
           static_cast<double>(test.size());
}

std::unique_ptr<core::DistTrainer>
makeBaseline(const std::string &method, const BaselineConfig &config,
             const data::DataBundle &bundle,
             const std::vector<float> *initial)
{
    if (method == "PS")
        return std::make_unique<PsTrainer>(config, bundle, initial);
    if (method == "RING")
        return std::make_unique<RingTrainer>(config, bundle, initial);
    if (method == "HiPress")
        return std::make_unique<HiPressTrainer>(config, bundle, initial);
    if (method == "2D-Paral")
        return std::make_unique<TwoDParTrainer>(config, bundle, initial);
    if (method == "FedAvg") {
        return std::make_unique<FedAvgTrainer>(
            config, bundle, FedAggregation::Star, initial);
    }
    if (method == "T-FedAvg") {
        return std::make_unique<FedAvgTrainer>(
            config, bundle, FedAggregation::Tree, initial);
    }
    if (method == "SSP") {
        return std::make_unique<SspTrainer>(config, bundle,
                                            config.sspStaleness,
                                            initial);
    }
    if (method == "Local-CPU") {
        return std::make_unique<LocalTrainer>(
            config, bundle, sim::Device::SocCpu, initial);
    }
    if (method == "Local-NPU") {
        return std::make_unique<LocalTrainer>(
            config, bundle, sim::Device::SocNpu, initial);
    }
    if (method == "V100") {
        return std::make_unique<LocalTrainer>(
            config, bundle, sim::Device::GpuV100, initial);
    }
    if (method == "A100") {
        return std::make_unique<LocalTrainer>(
            config, bundle, sim::Device::GpuA100, initial);
    }
    fatal("unknown baseline method: ", method);
}

} // namespace baselines
} // namespace socflow
