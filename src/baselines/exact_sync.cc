#include "baselines/exact_sync.hh"

#include <algorithm>
#include <cmath>

#include "collectives/reduce.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace socflow {
namespace baselines {

namespace {

sim::ClusterConfig
clusterFor(const BaselineConfig &cfg)
{
    sim::ClusterConfig c = cfg.clusterTemplate;
    c.numSocs = cfg.numSocs;
    return c;
}

std::vector<sim::SocId>
allSocs(std::size_t n)
{
    std::vector<sim::SocId> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = i;
    return v;
}

nn::Model
buildInitialModel(const BaselineConfig &cfg, const data::DataBundle &b,
                  const std::vector<float> *initial)
{
    Rng init_rng(cfg.seed ^ 0xbeef);
    nn::Model m = nn::buildModel(cfg.modelFamily, b.spec, init_rng);
    if (initial)
        m.setFlatParams(*initial);
    return m;
}

} // namespace

ExactSyncTrainer::ExactSyncTrainer(BaselineConfig config,
                                   const data::DataBundle &bundle_in,
                                   const std::vector<float> *initial)
    : cfg(std::move(config)), bundle(bundle_in),
      profile(sim::modelProfile(cfg.modelFamily)),
      cluster(clusterFor(cfg)), engine(cluster), compute(),
      model(buildInitialModel(cfg, bundle_in, initial)), rng(cfg.seed)
{
    sgd = std::make_unique<nn::Sgd>(model, cfg.sgd);
}

double
ExactSyncTrainer::computeSecondsPerBatch(std::size_t samples) const
{
    // Data-parallel: each SoC computes its share of the batch.
    const double perSoc =
        std::ceil(static_cast<double>(samples) /
                  static_cast<double>(cfg.numSocs));
    return perSoc * profile.cpuMsPerSample / 1000.0;
}

core::EpochRecord
ExactSyncTrainer::runEpoch()
{
    core::EpochRecord rec;
    sim::EnergyMeter meter;

    obs::Tracer &tr = obs::tracer();
    obs::ScopedSpan hostEpoch(tr, "runEpoch", "baseline");
    const bool tracing = tr.enabled();
    const std::string method = methodName();
    obs::Counter &stepCtr = obs::metrics().counter(
        "baseline_steps_total", {{"method", method}});
    obs::Histogram &stepSyncHist = obs::metrics().histogram(
        "baseline_step_sync_seconds", {{"method", method}});
    const double f = bundle.timeScale();

    data::BatchIterator it(bundle.train.size(), cfg.globalBatch,
                           rng.split());
    const double syncS = syncSecondsPerBatch();
    const double updateS = compute.updateSeconds(profile);

    double lossSum = 0.0, accSum = 0.0;
    std::size_t sampleSum = 0;
    double cpuSocSeconds = 0.0;
    double commSocSeconds = 0.0;

    while (!it.epochDone()) {
        const auto idx = it.next();
        auto [x, y] = bundle.train.batch(idx);
        model.zeroGrad();
        nn::StepResult r = model.trainStep(x, y);
        transformGradients();
        sgd->step();

        lossSum += r.loss * static_cast<double>(r.samples);
        accSum += r.accuracy * static_cast<double>(r.samples);
        sampleSum += r.samples;

        const double computeS = computeSecondsPerBatch(idx.size());
        rec.computeSeconds += computeS;
        rec.syncSeconds += syncS;
        rec.updateSeconds += updateS;
        double stepWallS;
        if (overlapsCompute()) {
            stepWallS = std::max(computeS, syncS) + updateS;
        } else {
            stepWallS = computeS + syncS + updateS;
        }
        rec.simSeconds += stepWallS;
        stepCtr.add(1.0);
        stepSyncHist.observe(syncS);
        if (tracing) {
            const double t0 = simClockS;
            tr.recordSpan("compute", "compute",
                          obs::kTrackGroupBase, t0, computeS * f);
            tr.recordSpan("sync", "comm", obs::kTrackComm,
                          overlapsCompute() ? t0 : t0 + computeS * f,
                          syncS * f);
            tr.recordSpan("step", "control", obs::kTrackControl, t0,
                          stepWallS * f);
        }
        simClockS += stepWallS * f;

        // Every SoC burns CPU power for its share, then comm power.
        cpuSocSeconds += static_cast<double>(idx.size()) *
                         profile.cpuMsPerSample / 1000.0;
        commSocSeconds += syncS * static_cast<double>(cfg.numSocs);
    }

    // Replicate per-step timing to a paper-scale epoch (the math ran
    // on the small synthetic stand-in; the simulated hardware would
    // iterate over the full dataset).
    rec.computeSeconds *= f;
    rec.syncSeconds *= f;
    rec.updateSeconds *= f;
    rec.simSeconds *= f;

    meter.accumulate(sim::PowerState::CpuTrain, cpuSocSeconds * f);
    meter.accumulate(sim::PowerState::Comm, commSocSeconds * f);
    const double totalSocSeconds =
        rec.simSeconds * static_cast<double>(cfg.numSocs);
    const double busySocSeconds =
        cpuSocSeconds * f + commSocSeconds * f;
    if (totalSocSeconds > busySocSeconds) {
        meter.accumulate(sim::PowerState::Idle,
                         totalSocSeconds - busySocSeconds);
    }

    rec.energyJoules = meter.totalJoules();
    rec.trainLoss = sampleSum ? lossSum / sampleSum : 0.0;
    rec.trainAcc = sampleSum ? accSum / sampleSum : 0.0;
    sgd->decayLearningRate();
    return rec;
}

double
ExactSyncTrainer::testAccuracy()
{
    const auto &test = bundle.test;
    const std::size_t chunk = 256;
    std::size_t correct = 0;
    for (std::size_t start = 0; start < test.size(); start += chunk) {
        std::vector<std::size_t> idx;
        for (std::size_t i = start;
             i < std::min(test.size(), start + chunk); ++i)
            idx.push_back(i);
        auto [x, y] = test.batch(idx);
        nn::StepResult r = model.evaluate(x, y);
        correct += static_cast<std::size_t>(
            std::lround(r.accuracy * static_cast<double>(r.samples)));
    }
    return static_cast<double>(correct) /
           static_cast<double>(test.size());
}

// ------------------------------------------------------------------ PS

double
PsTrainer::syncSecondsPerBatch() const
{
    if (cachedSyncS < 0.0) {
        cachedSyncS = engine
                          .paramServer(allSocs(cfg.numSocs), 0,
                                       profile.paramBytes())
                          .seconds;
    }
    return cachedSyncS;
}

// ---------------------------------------------------------------- RING

double
RingTrainer::syncSecondsPerBatch() const
{
    if (cachedSyncS < 0.0) {
        cachedSyncS =
            engine.ringAllReduce(allSocs(cfg.numSocs),
                                 profile.paramBytes())
                .seconds;
    }
    return cachedSyncS;
}

// ------------------------------------------------------------- HiPress

HiPressTrainer::HiPressTrainer(BaselineConfig config,
                               const data::DataBundle &bundle,
                               const std::vector<float> *initial)
    : ExactSyncTrainer(std::move(config), bundle, initial)
{
    residual.assign(model.paramCount(), 0.0f);
}

double
HiPressTrainer::syncSecondsPerBatch() const
{
    if (cachedSyncS < 0.0) {
        // Sparse payload: 4-byte value + 4-byte index per kept entry.
        // Sparse gradients cannot reduce-scatter along a ring (the
        // index sets differ), so HiPress aggregates hierarchically --
        // modeled as a binary aggregation/broadcast tree, which also
        // avoids paying the ring's 2(N-1) per-round latencies on a
        // payload this small.
        const double bytes =
            profile.paramBytes() * cfg.compressionRatio * 2.0;
        cachedSyncS =
            engine.treeAggregate(allSocs(cfg.numSocs), bytes).seconds;
    }
    return cachedSyncS;
}

double
HiPressTrainer::computeSecondsPerBatch(std::size_t samples) const
{
    return ExactSyncTrainer::computeSecondsPerBatch(samples) *
           (1.0 + cfg.compressionOverhead);
}

void
HiPressTrainer::transformGradients()
{
    // DGC: keep top-k by magnitude, bank the rest in the residual.
    std::vector<float> grad = model.flatGrads();
    collectives::SparseGrad sparse =
        collectives::compressTopK(grad, residual, cfg.compressionRatio);
    std::vector<float> dense(grad.size(), 0.0f);
    collectives::applySparse(sparse, dense);
    model.setFlatGrads(dense);
}

// ------------------------------------------------------------ 2D-Paral

double
TwoDParTrainer::syncSecondsPerBatch() const
{
    if (cachedSyncS < 0.0) {
        // Ring data parallelism across pipeline-group leaders. Every
        // group still pushes a full model gradient; stage shards sync
        // in parallel rings, so leaders carry the whole payload here.
        const std::size_t p =
            std::max<std::size_t>(1, cfg.pipelineGroupSize);
        std::vector<sim::SocId> leaders;
        for (std::size_t g = 0; g * p < cfg.numSocs; ++g)
            leaders.push_back(g * p);
        cachedSyncS =
            engine.ringAllReduce(leaders, profile.paramBytes()).seconds;
    }
    return cachedSyncS;
}

double
TwoDParTrainer::computeSecondsPerBatch(std::size_t samples) const
{
    // Pipeline of p stages over m microbatches: bubble factor
    // (m + p - 1) / m; activations hop between adjacent stages.
    const double p =
        static_cast<double>(std::max<std::size_t>(1,
                                                  cfg.pipelineGroupSize));
    const double m = static_cast<double>(
        std::max<std::size_t>(1, cfg.pipelineMicrobatches));
    const double groupCount =
        std::max(1.0, static_cast<double>(cfg.numSocs) / p);
    const double perGroupSamples =
        std::ceil(static_cast<double>(samples) / groupCount);
    const double idealS =
        perGroupSamples * profile.cpuMsPerSample / (1000.0 * p);
    const double pipelineS = idealS * (m + p - 1.0) / m;
    // Inter-stage activation traffic (intra-board at 1 Gbps).
    const double actS = perGroupSamples * (p - 1.0) *
                        cfg.activationBytesPerSample /
                        (cluster.config().socLinkBps / 8.0);
    return pipelineS + actS;
}

} // namespace baselines
} // namespace socflow
