/**
 * @file
 * Federated-learning baselines: FedAvg and tree-aggregated
 * hierarchical FedAvg (T-FedAvg).
 *
 * Per round (= epoch), every SoC trains locally on its shard for
 * `fedLocalEpochs` passes, then the weights are averaged -- via a
 * star to an aggregator SoC (FedAvg) or a binary aggregation tree
 * (T-FedAvg). Both use the IID shard setting of the paper; a
 * label-skew knob exposes the non-IID regime as an extension. The
 * gradient staleness of delayed averaging (and the resulting accuracy
 * gap and extra rounds) emerges from the real per-client math.
 */

#ifndef SOCFLOW_BASELINES_FEDAVG_HH
#define SOCFLOW_BASELINES_FEDAVG_HH

#include <memory>
#include <vector>

#include "baselines/common.hh"
#include "collectives/engine.hh"
#include "core/train_common.hh"
#include "data/dataset.hh"
#include "nn/zoo.hh"
#include "sim/calibration.hh"

namespace socflow {
namespace baselines {

/** Aggregation topologies for the federated baselines. */
enum class FedAggregation { Star, Tree };

/**
 * FedAvg-style trainer with one replica per SoC.
 */
class FedAvgTrainer : public core::DistTrainer
{
  public:
    FedAvgTrainer(BaselineConfig config, const data::DataBundle &bundle,
                  FedAggregation aggregation,
                  const std::vector<float> *initial = nullptr);

    core::EpochRecord runEpoch() override;
    double testAccuracy() override;
    std::string methodName() const override;

  private:
    struct Client {
        nn::Model model;
        std::unique_ptr<nn::Sgd> sgd;
        std::vector<std::size_t> shard;

        Client(const nn::Model &proto, const nn::SgdConfig &scfg);
    };

    BaselineConfig cfg;
    const data::DataBundle &bundle;
    const sim::ModelProfile &profile;
    sim::Cluster cluster;
    collectives::CollectiveEngine engine;
    FedAggregation agg;
    /** Owned by pointer: Client's optimizer references its model. */
    std::vector<std::unique_ptr<Client>> clients;
    std::vector<float> globalWeights;
    Rng rng;
    double currentLr = 0.0;
    mutable double cachedSyncS = -1.0;
};

} // namespace baselines
} // namespace socflow

#endif // SOCFLOW_BASELINES_FEDAVG_HH
