#include "baselines/ssp.hh"

#include <algorithm>
#include <cmath>

#include "sim/energy.hh"
#include "util/logging.hh"

namespace socflow {
namespace baselines {

namespace {

sim::ClusterConfig
clusterFor(const BaselineConfig &cfg)
{
    sim::ClusterConfig c = cfg.clusterTemplate;
    c.numSocs = cfg.numSocs;
    return c;
}

nn::Model
buildInitial(const BaselineConfig &cfg, const data::DataBundle &b,
             const std::vector<float> *initial)
{
    Rng init_rng(cfg.seed ^ 0xbeef);
    nn::Model m = nn::buildModel(cfg.modelFamily, b.spec, init_rng);
    if (initial)
        m.setFlatParams(*initial);
    return m;
}

} // namespace

SspTrainer::SspTrainer(BaselineConfig config,
                       const data::DataBundle &bundle_in,
                       std::size_t staleness,
                       const std::vector<float> *initial)
    : cfg(std::move(config)), bundle(bundle_in),
      profile(sim::modelProfile(cfg.modelFamily)),
      cluster(clusterFor(cfg)), engine(cluster), bound(staleness),
      model(buildInitial(cfg, bundle_in, initial)), rng(cfg.seed)
{
    sgd = std::make_unique<nn::Sgd>(model, cfg.sgd);
    globalWeights = model.flatParams();
    workers.resize(cfg.numSocs);
    for (auto &w : workers) {
        w.snapshot = globalWeights;
        // Treat the initial snapshot as maximally stale so every
        // worker pulls fresh weights before its first gradient.
        w.sincePull = bound + 1;
    }
}

core::EpochRecord
SspTrainer::runEpoch()
{
    core::EpochRecord rec;

    data::BatchIterator it(bundle.train.size(), cfg.globalBatch,
                           rng.split());
    double lossSum = 0.0, accSum = 0.0;
    std::size_t sampleSum = 0;
    std::size_t steps = 0;

    while (!it.epochDone()) {
        const auto idx = it.next();
        auto [x, y] = bundle.train.batch(idx);
        Worker &w = workers[steps % workers.size()];

        // Bounded staleness, checked before compute: a worker whose
        // snapshot is older than `bound` steps must re-pull first
        // (bound = 0 therefore degenerates to synchronous PS).
        if (w.sincePull > bound) {
            w.snapshot = globalWeights;
            w.sincePull = 0;
        }

        // Gradient against the worker's (possibly stale) snapshot.
        model.setFlatParams(w.snapshot);
        model.zeroGrad();
        const nn::StepResult r = model.trainStep(x, y);
        const std::vector<float> grads = model.flatGrads();

        // Server applies the (stale) gradient to the global model;
        // momentum is server-side state.
        model.setFlatParams(globalWeights);
        model.setFlatGrads(grads);
        sgd->step();
        globalWeights = model.flatParams();

        ++w.sincePull;

        lossSum += r.loss * static_cast<double>(r.samples);
        accSum += r.accuracy * static_cast<double>(r.samples);
        sampleSum += r.samples;
        ++steps;
    }

    // Timing: no barrier -- workers stream pushes/pulls to the
    // server while computing, so the epoch is bounded by the larger
    // of aggregate compute (spread over workers) and the server's
    // NIC drain rate under fan-in congestion.
    const double f = bundle.timeScale();
    const double stepsD = static_cast<double>(steps) * f;
    const double perWorkerSteps =
        stepsD / static_cast<double>(workers.size());
    const double computeS = perWorkerSteps *
                            static_cast<double>(cfg.globalBatch) *
                            profile.cpuMsPerSample / 1000.0;
    const double pullFraction =
        1.0 / static_cast<double>(bound + 1);
    const double wireBytes =
        stepsD * profile.paramBytes() * (1.0 + pullFraction);
    const double serverRate =
        (cluster.config().socLinkBps / 8.0) *
        std::pow(static_cast<double>(workers.size()),
                 -cluster.config().congestionExponent);
    const double syncS = wireBytes / serverRate;

    rec.computeSeconds = computeS;
    rec.syncSeconds = syncS;
    rec.updateSeconds =
        stepsD * profile.updateMsPerBatch / 1000.0;
    rec.simSeconds = std::max(computeS, syncS) + rec.updateSeconds;

    sim::EnergyMeter meter;
    meter.accumulate(sim::PowerState::CpuTrain,
                     computeS * static_cast<double>(workers.size()));
    meter.accumulate(sim::PowerState::Comm, syncS, workers.size());
    const double totalSocSeconds =
        rec.simSeconds * static_cast<double>(cfg.numSocs);
    const double busy =
        computeS * static_cast<double>(workers.size()) +
        syncS * static_cast<double>(workers.size());
    if (totalSocSeconds > busy) {
        meter.accumulate(sim::PowerState::Idle,
                         totalSocSeconds - busy);
    }
    rec.energyJoules = meter.totalJoules();
    rec.trainLoss = sampleSum ? lossSum / sampleSum : 0.0;
    rec.trainAcc = sampleSum ? accSum / sampleSum : 0.0;
    sgd->decayLearningRate();
    return rec;
}

double
SspTrainer::testAccuracy()
{
    model.setFlatParams(globalWeights);
    const auto &test = bundle.test;
    const std::size_t chunk = 256;
    std::size_t correct = 0;
    for (std::size_t start = 0; start < test.size(); start += chunk) {
        std::vector<std::size_t> idx;
        for (std::size_t i = start;
             i < std::min(test.size(), start + chunk); ++i)
            idx.push_back(i);
        auto [x, y] = test.batch(idx);
        const nn::StepResult r = model.evaluate(x, y);
        correct += static_cast<std::size_t>(
            std::lround(r.accuracy * static_cast<double>(r.samples)));
    }
    return static_cast<double>(correct) /
           static_cast<double>(test.size());
}

} // namespace baselines
} // namespace socflow
