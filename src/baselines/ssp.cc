#include "baselines/ssp.hh"

#include <algorithm>
#include <cmath>

#include "sim/energy.hh"
#include "util/logging.hh"

namespace socflow {
namespace baselines {

namespace {

sim::ClusterConfig
clusterFor(const BaselineConfig &cfg)
{
    sim::ClusterConfig c = cfg.clusterTemplate;
    c.numSocs = cfg.numSocs;
    return c;
}

nn::Model
buildInitial(const BaselineConfig &cfg, const data::DataBundle &b,
             const std::vector<float> *initial)
{
    Rng init_rng(cfg.seed ^ 0xbeef);
    nn::Model m = nn::buildModel(cfg.modelFamily, b.spec, init_rng);
    if (initial)
        m.setFlatParams(*initial);
    return m;
}

} // namespace

SspTrainer::SspTrainer(BaselineConfig config,
                       const data::DataBundle &bundle_in,
                       std::size_t staleness,
                       const std::vector<float> *initial)
    : cfg(std::move(config)), bundle(bundle_in),
      profile(sim::modelProfile(cfg.modelFamily)),
      cluster(clusterFor(cfg)), engine(cluster), bound(staleness),
      model(buildInitial(cfg, bundle_in, initial)), rng(cfg.seed)
{
    sgd = std::make_unique<nn::Sgd>(model, cfg.sgd);
    globalWeights = model.flatParams();
    workers.resize(cfg.numSocs);
    for (auto &w : workers) {
        w.snapshot = globalWeights;
        // Treat the initial snapshot as maximally stale so every
        // worker pulls fresh weights before its first gradient.
        w.sincePull = bound + 1;
    }
}

core::EpochRecord
SspTrainer::runEpoch()
{
    core::EpochRecord rec;
    rec.epoch = epochIdx;

    // Fault replay (satellite of the sharded-PS work): the monolithic
    // SSP server is SoC 0 with no failover tier, so a server crash or
    // an unreachable server board pauses the epoch outright. Worker
    // casualties just shrink the rotation. With no injector attached
    // the rotation is the identity and every formula below reduces to
    // the historical fault-free math bit-for-bit.
    std::vector<std::size_t> activeIdx;
    double minComputeFactor = 1.0;
    if (faults) {
        const auto fired = faults->advanceTo(epochIdx);
        for (const fault::FaultSpec &s : fired) {
            timeline.mix(static_cast<std::uint64_t>(s.kind));
            timeline.mix(static_cast<std::uint64_t>(s.epoch));
            timeline.mix(static_cast<std::uint64_t>(s.step));
            timeline.mix(static_cast<std::uint64_t>(s.soc));
            switch (s.kind) {
              case fault::FaultKind::SocCrash:
              case fault::FaultKind::SocCrashMidWave:
              case fault::FaultKind::LeaderCrash:
              case fault::FaultKind::PsServerCrash:
                ++rec.crashes;
                rec.recoverySeconds += engine.syncPolicy().timeoutS;
                break;
              case fault::FaultKind::BoardPartition:
              case fault::FaultKind::SwitchPartition:
                ++rec.partitions;
                break;
              case fault::FaultKind::SocRejoin:
                ++rec.rejoins;
                // The rejoiner lost its snapshot: force a pull
                // before its next gradient.
                if (s.soc < workers.size())
                    workers[s.soc].sincePull = bound + 1;
                break;
              default:
                break;
            }
        }
        const bool serverDown =
            !faults->socAlive(kServerSoc) ||
            !faults->boardReachable(cluster.board(kServerSoc));
        for (std::size_t i = 0; i < workers.size(); ++i) {
            const auto soc = static_cast<sim::SocId>(i);
            if (faults->socAlive(soc) &&
                faults->boardReachable(cluster.board(soc))) {
                activeIdx.push_back(i);
                minComputeFactor = std::min(
                    minComputeFactor, faults->computeFactor(soc));
            }
        }
        if (serverDown || activeIdx.empty()) {
            rec.paused = true;
            rec.simSeconds = engine.syncPolicy().timeoutS;
            timeline.mix(static_cast<std::uint64_t>(0xDEADBEA7ULL));
            timeline.mix(static_cast<std::uint64_t>(epochIdx));
            ++epochIdx;
            return rec;
        }
    } else {
        activeIdx.resize(workers.size());
        for (std::size_t i = 0; i < workers.size(); ++i)
            activeIdx[i] = i;
    }

    data::BatchIterator it(bundle.train.size(), cfg.globalBatch,
                           rng.split());
    double lossSum = 0.0, accSum = 0.0;
    std::size_t sampleSum = 0;
    std::size_t steps = 0;

    while (!it.epochDone()) {
        const auto idx = it.next();
        auto [x, y] = bundle.train.batch(idx);
        Worker &w = workers[activeIdx[steps % activeIdx.size()]];

        // Bounded staleness, checked before compute: a worker whose
        // snapshot is older than `bound` steps must re-pull first
        // (bound = 0 therefore degenerates to synchronous PS).
        if (w.sincePull > bound) {
            w.snapshot = globalWeights;
            w.sincePull = 0;
        }

        // Gradient against the worker's (possibly stale) snapshot.
        model.setFlatParams(w.snapshot);
        model.zeroGrad();
        const nn::StepResult r = model.trainStep(x, y);
        const std::vector<float> grads = model.flatGrads();

        // Server applies the (stale) gradient to the global model;
        // momentum is server-side state.
        model.setFlatParams(globalWeights);
        model.setFlatGrads(grads);
        sgd->step();
        globalWeights = model.flatParams();

        ++w.sincePull;

        lossSum += r.loss * static_cast<double>(r.samples);
        accSum += r.accuracy * static_cast<double>(r.samples);
        sampleSum += r.samples;
        ++steps;
    }

    // Timing: no barrier -- workers stream pushes/pulls to the
    // server while computing, so the epoch is bounded by the larger
    // of aggregate compute (spread over workers) and the server's
    // NIC drain rate under fan-in congestion.
    const double f = bundle.timeScale();
    const double stepsD = static_cast<double>(steps) * f;
    const std::size_t nActive = activeIdx.size();
    const double perWorkerSteps =
        stepsD / static_cast<double>(nActive);
    double computeS = perWorkerSteps *
                      static_cast<double>(cfg.globalBatch) *
                      profile.cpuMsPerSample / 1000.0;
    if (minComputeFactor > 0.0 && minComputeFactor < 1.0)
        computeS /= minComputeFactor;
    const double pullFraction =
        1.0 / static_cast<double>(bound + 1);
    const double wireBytes =
        stepsD * profile.paramBytes() * (1.0 + pullFraction);
    double serverRate =
        (cluster.config().socLinkBps / 8.0) *
        std::pow(static_cast<double>(nActive),
                 -cluster.config().congestionExponent);
    // A degraded NIC on the server's board throttles every exchange.
    if (faults)
        serverRate *= faults->linkFactor(cluster.board(kServerSoc));
    const double syncS = wireBytes / serverRate;

    rec.computeSeconds = computeS;
    rec.syncSeconds = syncS;
    rec.updateSeconds =
        stepsD * profile.updateMsPerBatch / 1000.0;
    rec.simSeconds = std::max(computeS, syncS) + rec.updateSeconds +
                     rec.recoverySeconds;

    sim::EnergyMeter meter;
    meter.accumulate(sim::PowerState::CpuTrain,
                     computeS * static_cast<double>(nActive));
    meter.accumulate(sim::PowerState::Comm, syncS, nActive);
    const double totalSocSeconds =
        rec.simSeconds * static_cast<double>(cfg.numSocs);
    const double busy = computeS * static_cast<double>(nActive) +
                        syncS * static_cast<double>(nActive);
    if (totalSocSeconds > busy) {
        meter.accumulate(sim::PowerState::Idle,
                         totalSocSeconds - busy);
    }
    rec.energyJoules = meter.totalJoules();
    rec.trainLoss = sampleSum ? lossSum / sampleSum : 0.0;
    rec.trainAcc = sampleSum ? accSum / sampleSum : 0.0;
    sgd->decayLearningRate();

    timeline.mix(static_cast<std::uint64_t>(epochIdx));
    timeline.mix(static_cast<std::uint64_t>(steps));
    timeline.mix(rec.simSeconds);
    timeline.mix(rec.trainLoss);
    ++epochIdx;
    return rec;
}

double
SspTrainer::testAccuracy()
{
    model.setFlatParams(globalWeights);
    const auto &test = bundle.test;
    const std::size_t chunk = 256;
    std::size_t correct = 0;
    for (std::size_t start = 0; start < test.size(); start += chunk) {
        std::vector<std::size_t> idx;
        for (std::size_t i = start;
             i < std::min(test.size(), start + chunk); ++i)
            idx.push_back(i);
        auto [x, y] = test.batch(idx);
        const nn::StepResult r = model.evaluate(x, y);
        correct += static_cast<std::size_t>(
            std::lround(r.accuracy * static_cast<double>(r.samples)));
    }
    return static_cast<double>(correct) /
           static_cast<double>(test.size());
}

} // namespace baselines
} // namespace socflow
