/**
 * @file
 * Shared configuration for the baseline trainers (§4.1).
 *
 * All baselines follow the paper's setup: FP32 training on each SoC's
 * four big CPU cores, global batch size shared with SoCFlow, and the
 * gradient compute/communication-overlap optimization enabled where
 * the communication pattern permits it.
 */

#ifndef SOCFLOW_BASELINES_COMMON_HH
#define SOCFLOW_BASELINES_COMMON_HH

#include <cstdint>
#include <string>

#include "nn/sgd.hh"
#include "sim/cluster.hh"

namespace socflow {
namespace baselines {

/** Knobs shared by every baseline. */
struct BaselineConfig {
    std::string modelFamily = "vgg11";
    std::size_t numSocs = 32;
    std::size_t globalBatch = 32;
    nn::SgdConfig sgd;
    std::uint64_t seed = 42;
    sim::ClusterConfig clusterTemplate;

    /** HiPress/DGC: fraction of gradient entries sent per step. */
    double compressionRatio = 0.05;
    /** HiPress: extra compute cost of compression (fraction). */
    double compressionOverhead = 0.05;

    /** 2D-Paral: SoCs per pipeline group (stage count). */
    std::size_t pipelineGroupSize = 4;
    /** 2D-Paral: microbatches per global batch. */
    std::size_t pipelineMicrobatches = 4;
    /** 2D-Paral: activation bytes exchanged per sample per stage. */
    double activationBytesPerSample = 4096.0;

    /** FedAvg: local passes over the shard per round. */
    std::size_t fedLocalEpochs = 1;
    /** FedAvg: local minibatch size. */
    std::size_t fedLocalBatch = 16;
    /** FedAvg: label-skew of client shards (0 = IID, paper setup). */
    double fedLabelSkew = 0.0;

    /** SSP extension: staleness bound (0 = synchronous PS). */
    std::size_t sspStaleness = 4;
};

} // namespace baselines
} // namespace socflow

#endif // SOCFLOW_BASELINES_COMMON_HH
