/**
 * @file
 * Single-device trainers: one SoC (CPU-FP32 or NPU-INT8) and the
 * datacenter GPUs (V100/A100) the paper compares against.
 *
 * The single-SoC trainers back the paper's motivation experiments
 * (Fig. 4a/4c) and Table 3's "Local" accuracy column; the GPU trainer
 * backs Fig. 11. All run the same real SGD math; they differ in the
 * device timing/power model applied.
 */

#ifndef SOCFLOW_BASELINES_LOCAL_HH
#define SOCFLOW_BASELINES_LOCAL_HH

#include <memory>
#include <vector>

#include "baselines/common.hh"
#include "core/train_common.hh"
#include "data/dataset.hh"
#include "nn/zoo.hh"
#include "quant/int8_trainer.hh"
#include "sim/calibration.hh"
#include "sim/compute_model.hh"

namespace socflow {
namespace baselines {

/**
 * Trains on a single simulated device.
 */
class LocalTrainer : public core::DistTrainer
{
  public:
    /**
     * @param device SocCpu (FP32), SocNpu (INT8), GpuV100 or GpuA100
     *        (FP32 at GPU speed/power).
     */
    LocalTrainer(BaselineConfig config, const data::DataBundle &bundle,
                 sim::Device device,
                 const std::vector<float> *initial = nullptr);

    core::EpochRecord runEpoch() override;
    double testAccuracy() override;
    std::string methodName() const override;

    /** Post-training weights (for transfer-learning handoff). */
    std::vector<float> weights() { return model.flatParams(); }

  private:
    BaselineConfig cfg;
    const data::DataBundle &bundle;
    const sim::ModelProfile &profile;
    sim::Device device;
    sim::ComputeModel compute;
    nn::Model model;
    std::unique_ptr<nn::Sgd> sgd;                  //!< FP32 path
    std::unique_ptr<quant::Int8Trainer> int8;      //!< INT8 path
    Rng rng;
};

/**
 * Factory covering every method string used in the benches:
 * "PS", "RING", "HiPress", "2D-Paral", "FedAvg", "T-FedAvg",
 * "Local-CPU", "Local-NPU", "V100", "A100".
 */
std::unique_ptr<core::DistTrainer> makeBaseline(
    const std::string &method, const BaselineConfig &config,
    const data::DataBundle &bundle,
    const std::vector<float> *initial = nullptr);

} // namespace baselines
} // namespace socflow

#endif // SOCFLOW_BASELINES_LOCAL_HH
