/**
 * @file
 * Stale-Synchronous-Parallel (SSP) baseline — an extension beyond the
 * paper's six comparison points, covering the asynchronous family its
 * related-work section discusses (Ho et al., SSP parameter servers).
 *
 * Workers push gradients to a parameter server without a global
 * barrier and re-pull the global weights only every `staleness`
 * local steps, so each gradient may be computed against weights up
 * to `staleness` versions old. staleness = 0 degenerates to the
 * fully synchronous parameter server; growing staleness trades
 * convergence quality for the removal of synchronization stalls --
 * both effects emerge from the real math here.
 */

#ifndef SOCFLOW_BASELINES_SSP_HH
#define SOCFLOW_BASELINES_SSP_HH

#include <memory>
#include <vector>

#include "baselines/common.hh"
#include "collectives/engine.hh"
#include "core/train_common.hh"
#include "data/dataset.hh"
#include "fault/fault.hh"
#include "nn/zoo.hh"
#include "sim/calibration.hh"
#include "util/hash.hh"

namespace socflow {
namespace baselines {

/**
 * SSP trainer: one server-held global model, per-worker stale
 * snapshots.
 */
class SspTrainer : public core::DistTrainer
{
  public:
    /**
     * @param staleness max pulls a worker may skip (0 = synchronous).
     */
    SspTrainer(BaselineConfig config, const data::DataBundle &bundle,
               std::size_t staleness,
               const std::vector<float> *initial = nullptr);

    core::EpochRecord runEpoch() override;
    double testAccuracy() override;
    std::string methodName() const override { return "SSP"; }

    /** Configured staleness bound. */
    std::size_t staleness() const { return bound; }

    /**
     * Attach a fault injector (not owned; nullptr detaches). Without
     * one, behaviour is exactly the historical fault-free math, so
     * monolithic-PS / sharded-PS / group-wise head-to-heads can run
     * under identical seeded fault mixes. The monolithic server is
     * SoC 0: its crash or an unreachable board 0 pauses the epoch
     * (there is no failover tier here -- that asymmetry against the
     * sharded PS is the point of the comparison).
     */
    void attachFaultInjector(fault::FaultInjector *inj)
    {
        faults = inj;
        engine.setFaultModel(inj);
    }

    /** Deterministic fault/recovery timeline fingerprint. */
    std::uint64_t timelineHash() const { return timeline.value(); }

    std::size_t epochsDone() const { return epochIdx; }

    /** The single server SoC of the monolithic PS. */
    static constexpr sim::SocId kServerSoc = 0;

  private:
    struct Worker {
        /** Stale snapshot the worker computes gradients against. */
        std::vector<float> snapshot;
        /** Local steps since the last pull. */
        std::size_t sincePull = 0;
    };

    BaselineConfig cfg;
    const data::DataBundle &bundle;
    const sim::ModelProfile &profile;
    sim::Cluster cluster;
    collectives::CollectiveEngine engine;
    std::size_t bound;

    /** Scratch replica used to evaluate gradients and the test set. */
    nn::Model model;
    std::unique_ptr<nn::Sgd> sgd;
    /** Server-side source of truth. */
    std::vector<float> globalWeights;
    std::vector<Worker> workers;
    Rng rng;

    fault::FaultInjector *faults = nullptr;
    Fnv1a64 timeline;
    std::size_t epochIdx = 0;
};

} // namespace baselines
} // namespace socflow

#endif // SOCFLOW_BASELINES_SSP_HH
