#include "baselines/fedavg.hh"

#include <algorithm>
#include <cmath>

#include "collectives/reduce.hh"
#include "sim/energy.hh"
#include "util/logging.hh"

namespace socflow {
namespace baselines {

namespace {

sim::ClusterConfig
clusterFor(const BaselineConfig &cfg)
{
    sim::ClusterConfig c = cfg.clusterTemplate;
    c.numSocs = cfg.numSocs;
    return c;
}

} // namespace

FedAvgTrainer::Client::Client(const nn::Model &proto,
                              const nn::SgdConfig &scfg)
    : model(proto)
{
    sgd = std::make_unique<nn::Sgd>(model, scfg);
}

FedAvgTrainer::FedAvgTrainer(BaselineConfig config,
                             const data::DataBundle &bundle_in,
                             FedAggregation aggregation,
                             const std::vector<float> *initial)
    : cfg(std::move(config)), bundle(bundle_in),
      profile(sim::modelProfile(cfg.modelFamily)),
      cluster(clusterFor(cfg)), engine(cluster), agg(aggregation),
      rng(cfg.seed), currentLr(cfg.sgd.learningRate)
{
    Rng initRng(cfg.seed ^ 0xbeef);
    nn::Model proto = nn::buildModel(cfg.modelFamily, bundle.spec,
                                     initRng);
    if (initial)
        proto.setFlatParams(*initial);
    globalWeights = proto.flatParams();

    // Static client shards (federated data does not shuffle across
    // clients -- the key difference from SoCFlow's cross-group
    // shuffle).
    Rng shardRng(cfg.seed ^ 0x5a5a);
    std::vector<std::vector<std::size_t>> shards;
    if (cfg.fedLabelSkew > 0.0) {
        shards = data::shardByLabelSkew(bundle.train.labels(),
                                        cfg.numSocs, cfg.fedLabelSkew,
                                        bundle.train.classes(), shardRng);
    } else {
        shards = data::shardIid(bundle.train.size(), cfg.numSocs,
                                shardRng);
    }

    clients.reserve(cfg.numSocs);
    for (std::size_t c = 0; c < cfg.numSocs; ++c) {
        clients.push_back(std::make_unique<Client>(proto, cfg.sgd));
        clients.back()->shard = std::move(shards[c]);
    }
}

std::string
FedAvgTrainer::methodName() const
{
    return agg == FedAggregation::Star ? "FedAvg" : "T-FedAvg";
}

core::EpochRecord
FedAvgTrainer::runEpoch()
{
    core::EpochRecord rec;
    sim::EnergyMeter meter;

    double lossSum = 0.0, accSum = 0.0;
    std::size_t sampleSum = 0;
    std::size_t maxShard = 0;

    for (auto &clientPtr : clients) {
        Client &client = *clientPtr;
        client.model.setFlatParams(globalWeights);
        client.sgd->resetState();
        client.sgd->config().learningRate = currentLr;
        maxShard = std::max(maxShard, client.shard.size());

        for (std::size_t pass = 0; pass < cfg.fedLocalEpochs; ++pass) {
            rng.shuffle(client.shard);
            for (std::size_t start = 0; start < client.shard.size();
                 start += cfg.fedLocalBatch) {
                const std::size_t end = std::min(
                    client.shard.size(), start + cfg.fedLocalBatch);
                std::vector<std::size_t> idx(
                    client.shard.begin() + start,
                    client.shard.begin() + end);
                auto [x, y] = bundle.train.batch(idx);
                client.model.zeroGrad();
                nn::StepResult r = client.model.trainStep(x, y);
                client.sgd->step();
                lossSum += r.loss * static_cast<double>(r.samples);
                accSum += r.accuracy * static_cast<double>(r.samples);
                sampleSum += r.samples;
            }
        }
    }

    // Aggregate client weights (equal shards -> plain average).
    std::vector<std::vector<float> *> ptrs;
    std::vector<std::vector<float>> weights;
    weights.reserve(clients.size());
    for (auto &client : clients)
        weights.push_back(client->model.flatParams());
    for (auto &w : weights)
        ptrs.push_back(&w);
    collectives::allReduceAverage(ptrs);
    globalWeights = weights.front();

    // Timing: clients run concurrently; the slowest shard bounds the
    // compute phase, then one aggregation per round.
    const double computeS = static_cast<double>(maxShard) *
                            static_cast<double>(cfg.fedLocalEpochs) *
                            profile.cpuMsPerSample / 1000.0;
    if (cachedSyncS < 0.0) {
        std::vector<sim::SocId> socs(cfg.numSocs);
        for (std::size_t i = 0; i < cfg.numSocs; ++i)
            socs[i] = i;
        if (agg == FedAggregation::Star) {
            cachedSyncS =
                engine.paramServer(socs, 0, profile.paramBytes())
                    .seconds;
        } else {
            cachedSyncS =
                engine.treeAggregate(socs, profile.paramBytes())
                    .seconds;
        }
    }
    // The local-compute phase replicates to the paper-scale dataset;
    // aggregation still happens once per round.
    const double f = bundle.timeScale();
    rec.computeSeconds = computeS * f;
    rec.syncSeconds = cachedSyncS;
    rec.updateSeconds = 0.0;
    rec.simSeconds = rec.computeSeconds + cachedSyncS;

    const double cpuSocSeconds =
        static_cast<double>(sampleSum) * profile.cpuMsPerSample * f /
        1000.0;
    meter.accumulate(sim::PowerState::CpuTrain, cpuSocSeconds);
    meter.accumulate(sim::PowerState::Comm, cachedSyncS, cfg.numSocs);
    const double totalSocSeconds =
        rec.simSeconds * static_cast<double>(cfg.numSocs);
    const double busySocSeconds =
        cpuSocSeconds + cachedSyncS * static_cast<double>(cfg.numSocs);
    if (totalSocSeconds > busySocSeconds) {
        meter.accumulate(sim::PowerState::Idle,
                         totalSocSeconds - busySocSeconds);
    }
    rec.energyJoules = meter.totalJoules();
    rec.trainLoss = sampleSum ? lossSum / sampleSum : 0.0;
    rec.trainAcc = sampleSum ? accSum / sampleSum : 0.0;
    currentLr *= cfg.sgd.lrDecayPerEpoch;
    return rec;
}

double
FedAvgTrainer::testAccuracy()
{
    nn::Model &m = clients.front()->model;
    m.setFlatParams(globalWeights);
    const auto &test = bundle.test;
    const std::size_t chunk = 256;
    std::size_t correct = 0;
    for (std::size_t start = 0; start < test.size(); start += chunk) {
        std::vector<std::size_t> idx;
        for (std::size_t i = start;
             i < std::min(test.size(), start + chunk); ++i)
            idx.push_back(i);
        auto [x, y] = test.batch(idx);
        nn::StepResult r = m.evaluate(x, y);
        correct += static_cast<std::size_t>(
            std::lround(r.accuracy * static_cast<double>(r.samples)));
    }
    return static_cast<double>(correct) /
           static_cast<double>(test.size());
}

} // namespace baselines
} // namespace socflow
