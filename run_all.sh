#!/bin/bash
# Usage: run_all.sh [--sanitize|--chaos]
#   default     run the test suite + every bench from build/
#   --sanitize  configure build-asan with -DSANITIZE=ON and run the
#               test suite under AddressSanitizer + UBSan
#   --chaos     run the fault suite under ASan+UBSan with 10 random
#               chaos seeds (SOCFLOW_CHAOS_SEED); fails on any
#               sanitizer report or non-deterministic replay (the
#               ChaosReplay tests hash each seed's fault timeline and
#               re-run it, so same seed must give the same hash)
cd /root/repo

if [ "$1" = "--chaos" ]; then
    cmake -B build-asan -S . -DSANITIZE=ON || exit 1
    cmake --build build-asan -j --target test_fault test_fault_step \
        || exit 1
    status=0
    for seed in 11 42 137 271 828 1729 2024 31337 65537 99991; do
        echo "== chaos seed $seed =="
        if ! ASAN_OPTIONS=detect_leaks=0 \
             UBSAN_OPTIONS=halt_on_error=1 \
             SOCFLOW_CHAOS_SEED=$seed \
             ctest --test-dir build-asan --output-on-failure \
                 -R 'test_fault($|_step)'; then
            echo "CHAOS_SEED_FAILED seed=$seed"
            status=1
        fi
    done
    if [ $status -eq 0 ]; then
        echo "CHAOS_RUN_COMPLETE"
    else
        echo "CHAOS_RUN_FAILED"
    fi
    exit $status
fi

if [ "$1" = "--sanitize" ]; then
    cmake -B build-asan -S . -DSANITIZE=ON || exit 1
    cmake --build build-asan -j || exit 1
    ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
        ctest --test-dir build-asan --output-on-failure 2>&1 |
        tee /root/repo/sanitize_output.txt
    echo "SANITIZE_RUN_COMPLETE"
    exit 0
fi

rm -rf .bench_cache
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
for b in build/bench/*; do $b; done 2>&1 | tee /root/repo/bench_output.txt
echo "ALL_RUNS_COMPLETE"
