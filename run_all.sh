#!/bin/bash
cd /root/repo
rm -rf .bench_cache
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
for b in build/bench/*; do $b; done 2>&1 | tee /root/repo/bench_output.txt
echo "ALL_RUNS_COMPLETE"
