#!/bin/bash
# Usage: run_all.sh [--sanitize|--tsan|--chaos|--chaos-nightly [count]|--bench [tag]|--profile|--crash-restart|--docs-check]
#   default     run the test suite + every bench from build/
#   --sanitize  configure build-asan with -DSANITIZE=ON and run the
#               test suite under AddressSanitizer + UBSan
#   --tsan      configure build-tsan with -DSANITIZE=thread and run
#               the concurrency-sensitive suites (streaming obs sink
#               flusher thread, membership/fencing, thread pool, the
#               parallel determinism harness, and the sharded
#               parameter-server suite) under ThreadSanitizer
#   --bench [tag]
#               build Release into build-rel, run bench_e2e_throughput
#               and fig10_scalability, write BENCH_<tag>.json (tag
#               defaults to the current commit's short hash), and fail
#               if epochs/sec regresses more than 10% against the
#               committed BENCH_baseline.json
#   --chaos     run the fault + streaming-obs + membership + parallel
#               determinism + fleet topology + sharded-PS suites
#               under ASan+UBSan with 10 fixed chaos seeds
#               (SOCFLOW_CHAOS_SEED); fails on any sanitizer report or
#               non-deterministic replay (the ChaosReplay tests hash
#               each seed's fault timeline -- including partition,
#               heal, and rejoin events -- and re-run it, so same seed
#               must give the same hash).  Each seed also drives the
#               multi-rack batch: SeededFleetChurnBitExact draws a
#               seeded fault plan with a rack cut, a crash, and a
#               rejoin on a 4-rack fleet and replays it at 1/2/5/8
#               threads, and test_fleet_topology replays a rack-cut ->
#               park -> heal round trip, so rack-granular faults get
#               the same per-seed determinism gate as board faults
#   --chaos-nightly [count]
#               like --chaos but with `count` (default 10) *fresh*
#               random seeds, each with the crash flight recorder
#               armed (SOCFLOW_POSTMORTEM); failing seeds and their
#               post-mortem dump paths append to chaos_failures.txt
#               so a failure found tonight can be replayed tomorrow
#   --profile   run the profiler test suite plus a profiled harvest
#               day: fail if the wall-time conservation invariant
#               breaks (every epoch's exclusive phases must sum to
#               its wall seconds) or if the profiled run's timeline
#               hash diverges from a SOCFLOW_PROFILE=0 rerun -- the
#               zero-perturbation guarantee checked end to end
#   --crash-restart
#               run the replicated-checkpoint suites (test_ckpt,
#               test_checkpoint, the crash-restart determinism
#               scenarios) plus the crash_restart example: a 2-rack
#               fleet loses power mid-epoch AND the primary replica's
#               rack loses durable storage; the run must restore from
#               the surviving cross-rack copy and the resumed
#               timeline hash must equal a resume from the original
#               blob (the invariant DESIGN.md ch. 13 promises)
#   --docs-check
#               fail if any user-facing "--flag" handled by
#               bench/bench_common.cc is documented in neither
#               README.md nor DESIGN.md
cd /root/repo

chaos_targets="test_fault test_fault_step test_obs_stream test_membership test_parallel_determinism test_fleet_topology test_ps test_profiler test_ckpt"
chaos_regex='test_(fault($|_step)|obs_stream$|membership$|parallel_determinism$|fleet_topology$|ps$|profiler$|ckpt$)'

run_chaos_seed() {
    # $1 = seed, $2 = optional post-mortem dump path
    env ASAN_OPTIONS=detect_leaks=0 \
        UBSAN_OPTIONS=halt_on_error=1 \
        SOCFLOW_CHAOS_SEED="$1" \
        ${2:+SOCFLOW_POSTMORTEM="$2"} \
        ctest --test-dir build-asan --output-on-failure \
            -R "$chaos_regex"
}

if [ "$1" = "--chaos" ]; then
    cmake -B build-asan -S . -DSANITIZE=ON || exit 1
    cmake --build build-asan -j --target $chaos_targets || exit 1
    status=0
    for seed in 11 42 137 271 828 1729 2024 31337 65537 99991; do
        echo "== chaos seed $seed =="
        if ! run_chaos_seed $seed; then
            echo "CHAOS_SEED_FAILED seed=$seed"
            status=1
        fi
    done
    if [ $status -eq 0 ]; then
        echo "CHAOS_RUN_COMPLETE"
    else
        echo "CHAOS_RUN_FAILED"
    fi
    exit $status
fi

if [ "$1" = "--chaos-nightly" ]; then
    count=${2:-10}
    cmake -B build-asan -S . -DSANITIZE=ON || exit 1
    cmake --build build-asan -j --target $chaos_targets || exit 1
    status=0
    for i in $(seq 1 "$count"); do
        seed=$(( (RANDOM << 15 | RANDOM) + 1 ))
        dump=/root/repo/build-asan/postmortem_seed${seed}.json
        echo "== chaos-nightly seed $seed ($i/$count) =="
        if ! run_chaos_seed $seed "$dump"; then
            echo "CHAOS_SEED_FAILED seed=$seed dump=$dump"
            echo "seed=$seed dump=$dump" >> /root/repo/chaos_failures.txt
            status=1
        fi
    done
    if [ $status -eq 0 ]; then
        echo "CHAOS_NIGHTLY_COMPLETE"
    else
        echo "CHAOS_NIGHTLY_FAILED (failing seeds in chaos_failures.txt)"
    fi
    exit $status
fi

if [ "$1" = "--tsan" ]; then
    tsan_targets="test_obs_stream test_membership test_thread_pool test_parallel_determinism test_ps test_profiler test_ckpt"
    cmake -B build-tsan -S . -DSANITIZE=thread || exit 1
    cmake --build build-tsan -j --target $tsan_targets || exit 1
    ( set -o pipefail
      TSAN_OPTIONS=halt_on_error=1 \
          ctest --test-dir build-tsan --output-on-failure \
              -R 'test_(obs_stream|membership|thread_pool|parallel_determinism|ps|profiler|ckpt)$' 2>&1 |
          tee /root/repo/tsan_output.txt ) || exit 1
    echo "TSAN_RUN_COMPLETE"
    exit 0
fi

if [ "$1" = "--bench" ]; then
    tag=${2:-$(git -C /root/repo rev-parse --short HEAD 2>/dev/null || echo local)}
    cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release || exit 1
    cmake --build build-rel -j \
        --target bench_e2e_throughput fig10_scalability || exit 1
    out=/root/repo/BENCH_${tag}.json
    baseline=/root/repo/BENCH_baseline.json
    baseline_arg=""
    [ -f "$baseline" ] && baseline_arg="--baseline=$baseline"
    if ! ./build-rel/bench/bench_e2e_throughput \
            --bench-json="$out" $baseline_arg; then
        echo "BENCH_RUN_FAILED (regression vs $baseline or divergence)"
        exit 1
    fi
    ./build-rel/bench/fig10_scalability || exit 1
    echo "BENCH_RUN_COMPLETE (wrote $out)"
    exit 0
fi

if [ "$1" = "--profile" ]; then
    cmake -B build -S . || exit 1
    cmake --build build -j --target test_profiler harvest_day \
        fig12_breakdown || exit 1
    # Unit + integration conservation/attribution suite.
    ctest --test-dir build --output-on-failure \
        -R 'test_profiler$' || exit 1
    # Profiled harvest day: the perf-doctor JSON must certify the
    # conservation invariant held for every epoch of the day.
    prof_json=/root/repo/build/profile_harvest.json
    ./build/examples/harvest_day \
        --profile-out "$prof_json" > build/profile_on.txt || exit 1
    if ! grep -q '"conservation_ok":true' "$prof_json"; then
        echo "PROFILE_RUN_FAILED (conservation invariant violated;"\
             "see $prof_json)"
        exit 1
    fi
    # Zero perturbation: rerun with the profiler disabled; the
    # simulated day must replay to the identical timeline hash.
    SOCFLOW_PROFILE=0 ./build/examples/harvest_day \
        > build/profile_off.txt || exit 1
    hash_on=$(grep '^timeline hash:' build/profile_on.txt)
    hash_off=$(grep '^timeline hash:' build/profile_off.txt)
    if [ -z "$hash_on" ] || [ "$hash_on" != "$hash_off" ]; then
        echo "PROFILE_RUN_FAILED (profiling perturbed the timeline:"\
             "'$hash_on' vs '$hash_off')"
        exit 1
    fi
    # Cross-check against the bench's own breakdown accounting
    # (fig12_breakdown exits non-zero if the profiler disagrees by
    # more than 5% or claims a comm-bound model overlaps well).
    ./build/bench/fig12_breakdown --smoke > /dev/null || exit 1
    echo "PROFILE_RUN_COMPLETE (report: $prof_json)"
    exit 0
fi

if [ "$1" = "--crash-restart" ]; then
    cmake -B build -S . || exit 1
    cmake --build build -j --target test_ckpt test_checkpoint \
        test_parallel_determinism crash_restart || exit 1
    # Unit layer: placement, envelope/manifest fuzz, quorum restore,
    # rack-survival of acked writes.
    ctest --test-dir build --output-on-failure \
        -R 'test_(ckpt|checkpoint)$' || exit 1
    # Determinism layer: crash + restore replays bit-exactly at
    # 1/2/5/8 threads, and a resumed run matches an uninterrupted
    # one from the same checkpoint.
    ./build/tests/test_parallel_determinism \
        --gtest_filter='*CrashRestart*:*Resumed*' || exit 1
    # End to end: power loss + rack storage loss + restore + resume.
    out=build/crash_restart.txt
    if ! ./build/examples/crash_restart > "$out"; then
        echo "CRASH_RESTART_FAILED (recovery run exited non-zero;"\
             "see $out)"
        exit 1
    fi
    hashes=$(grep '^timeline hash:' "$out" | awk '{print $3}' | sort -u)
    if [ "$(echo "$hashes" | wc -l)" != 1 ] || [ -z "$hashes" ]; then
        echo "CRASH_RESTART_FAILED (resumed and reference timelines"\
             "diverged: $hashes)"
        exit 1
    fi
    echo "CRASH_RESTART_COMPLETE"
    exit 0
fi

if [ "$1" = "--docs-check" ]; then
    # Every user-facing flag the bench harness parses must appear in
    # README.md or DESIGN.md, so the docs can never silently trail
    # the CLI surface.
    status=0
    for flag in $(grep -oE '"--[a-z0-9-]+"' bench/bench_common.cc |
                      tr -d '"' | sort -u); do
        if ! grep -qF -e "$flag" README.md DESIGN.md; then
            echo "DOCS_CHECK_UNDOCUMENTED_FLAG $flag"
            status=1
        fi
    done
    if [ $status -eq 0 ]; then
        echo "DOCS_CHECK_COMPLETE"
    else
        echo "DOCS_CHECK_FAILED (flags above missing from README.md and DESIGN.md)"
    fi
    exit $status
fi

if [ "$1" = "--sanitize" ]; then
    cmake -B build-asan -S . -DSANITIZE=ON || exit 1
    cmake --build build-asan -j || exit 1
    ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
        ctest --test-dir build-asan --output-on-failure 2>&1 |
        tee /root/repo/sanitize_output.txt
    # Exercise the streaming sink + NDJSON series end to end under
    # the sanitizers (tiny rotation limit forces several segments).
    ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
        ./build-asan/examples/harvest_day \
        --trace-out build-asan/harvest_stream.json \
        --trace-rotate-mb 1 --metrics-out build-asan/harvest_series.ndjson \
        --metrics-interval 2 >/dev/null || exit 1
    echo "SANITIZE_RUN_COMPLETE"
    exit 0
fi

rm -rf .bench_cache
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
for b in build/bench/*; do $b; done 2>&1 | tee /root/repo/bench_output.txt
echo "ALL_RUNS_COMPLETE"
