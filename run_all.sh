#!/bin/bash
# Usage: run_all.sh [--sanitize]
#   default     run the test suite + every bench from build/
#   --sanitize  configure build-asan with -DSANITIZE=ON and run the
#               test suite under AddressSanitizer + UBSan
cd /root/repo

if [ "$1" = "--sanitize" ]; then
    cmake -B build-asan -S . -DSANITIZE=ON || exit 1
    cmake --build build-asan -j || exit 1
    ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
        ctest --test-dir build-asan --output-on-failure 2>&1 |
        tee /root/repo/sanitize_output.txt
    echo "SANITIZE_RUN_COMPLETE"
    exit 0
fi

rm -rf .bench_cache
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
for b in build/bench/*; do $b; done 2>&1 | tee /root/repo/bench_output.txt
echo "ALL_RUNS_COMPLETE"
